"""Declarative parameter sweeps over a base :class:`~repro.api.spec.SystemSpec`.

A :class:`SweepSpec` names a grid — scenario × shards × scheduler × n_nodes
× loss_rate × seed replicate — over one base deployment spec, in one frozen,
JSON-round-trippable value (the same pattern ``SystemSpec`` and
``ScenarioSpec`` established).  :meth:`SweepSpec.expand` turns the grid into
an ordered list of :class:`SweepTask` points, each with a **deterministic
derived seed**: the seed is hashed from the master seed and the task's axis
coordinates (never its position), so

* the same sweep + master seed always derives the same per-task seeds,
* a task keeps its seed when unrelated axis values are added or removed,
* distinct tasks never share a seed (verified at expansion; a 64-bit hash
  collision raises instead of silently correlating two runs).

Every task point materializes as one scenario run: either a named scenario
from :mod:`repro.scenarios.library` (with the swept axes overriding its
sizing) or, when the scenario axis is unset, a synthesized single-phase
"window" scenario — n subscribers stabilized, then a disruption window of
``window_rounds`` with ``publications`` publications under ``loss_rate``,
measured by the standard scenario invariants.  Axes left empty inherit from
the base spec (or the named scenario), so a sweep only states what varies.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from itertools import product
from typing import Any, Dict, List, Optional, Tuple

from repro.api.spec import SystemSpec
from repro.scenarios.spec import PhaseSpec, ScenarioSpec
from repro.sim.rng import derive_seed
from repro.sim.scheduler import SCHEDULER_NAMES

#: Default subscriber count of synthesized window scenarios when the sweep
#: does not sweep ``n_nodes``.
DEFAULT_WINDOW_SUBSCRIBERS = 12


@dataclass(frozen=True)
class SweepTask:
    """One expanded grid point.  ``None`` axis values mean "inherited" —
    resolved against the base spec / named scenario by
    :meth:`SweepSpec.scenario_for` and :meth:`SweepSpec.system_for`."""

    index: int
    scenario: Optional[str]
    shards: Optional[int]
    scheduler: str
    n_nodes: Optional[int]
    loss_rate: Optional[float]
    seed_index: int
    seed: int

    @property
    def task_id(self) -> str:
        parts = [self.scenario or "window"]
        if self.shards is not None:
            parts.append(f"k{self.shards}")
        parts.append(self.scheduler)
        if self.n_nodes is not None:
            parts.append(f"n{self.n_nodes}")
        if self.loss_rate is not None:
            parts.append(f"loss{self.loss_rate:g}")
        parts.append(f"s{self.seed_index}")
        return "/".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "task_id": self.task_id,
            "scenario": self.scenario,
            "shards": self.shards,
            "scheduler": self.scheduler,
            "n_nodes": self.n_nodes,
            "loss_rate": self.loss_rate,
            "seed_index": self.seed_index,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class SweepSpec:
    """A named parameter grid over a base deployment spec.

    Attributes
    ----------
    name:
        Sweep name; part of every derived seed and of the campaign artifact.
    base:
        The :class:`~repro.api.spec.SystemSpec` every task inherits from.
        Its ``seed`` is the sweep's **master seed**; its ``scheduler`` and
        ``shards`` are the defaults for unswept axes; its protocol/simulator
        knobs are forwarded into every task's system.
    n_nodes / shards / schedulers / scenarios / loss_rates:
        Axis value tuples.  An empty tuple means the axis is not swept and
        every task inherits the base/scenario value.  ``scenarios`` entries
        are built-in scenario names (:mod:`repro.scenarios.library`); the
        value ``None`` (the default when unswept) synthesizes a window
        scenario instead.
    seeds:
        Number of seed replicates per grid point (>= 1).
    window_rounds / settle_rounds / publications / joins / crashes:
        Shape of the synthesized window scenario (ignored for named
        scenarios): window length, settle budget, publications issued, and
        membership churn spread over the window.
    """

    name: str
    base: SystemSpec = field(default_factory=SystemSpec)
    n_nodes: Tuple[int, ...] = ()
    shards: Tuple[int, ...] = ()
    schedulers: Tuple[str, ...] = ()
    scenarios: Tuple[Optional[str], ...] = ()
    loss_rates: Tuple[float, ...] = ()
    seeds: int = 1
    window_rounds: float = 20.0
    settle_rounds: float = 400.0
    publications: int = 4
    joins: int = 0
    crashes: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a sweep needs a non-empty name")
        if isinstance(self.base, dict):
            object.__setattr__(self, "base", SystemSpec.from_dict(self.base))
        for axis in ("n_nodes", "shards", "schedulers", "scenarios",
                     "loss_rates"):
            object.__setattr__(self, axis, tuple(getattr(self, axis)))
        if any(n < 2 for n in self.n_nodes):
            raise ValueError("every n_nodes value must be >= 2")
        if any(k < 1 for k in self.shards):
            raise ValueError("every shards value must be >= 1")
        for scheduler in self.schedulers:
            if scheduler not in SCHEDULER_NAMES:
                raise ValueError(
                    f"scheduler must be one of {SCHEDULER_NAMES}, "
                    f"got {scheduler!r}")
        for scenario in self.scenarios:
            if scenario is not None and not isinstance(scenario, str):
                raise ValueError("scenario axis values must be names or None")
        if any(not 0.0 <= rate < 1.0 for rate in self.loss_rates):
            raise ValueError("every loss_rate must lie in [0, 1)")
        if self.seeds < 1:
            raise ValueError("seeds must be >= 1")
        if self.window_rounds <= 0:
            raise ValueError("window_rounds must be positive")
        if self.settle_rounds < 0:
            raise ValueError("settle_rounds must be non-negative")
        if self.publications < 0:
            raise ValueError("publications must be non-negative")
        if self.joins < 0 or self.crashes < 0:
            raise ValueError("joins and crashes must be non-negative")

    # -------------------------------------------------------------- expansion
    @property
    def master_seed(self) -> int:
        return self.base.seed

    def axis_values(self) -> Dict[str, Tuple]:
        """Normalized grid axes in expansion order (empty axes collapse to a
        single inherited point)."""
        return {
            "scenario": self.scenarios or (None,),
            "shards": self.shards or (None,),
            "scheduler": self.schedulers or (self.base.scheduler,),
            "n_nodes": self.n_nodes or (None,),
            "loss_rate": self.loss_rates or (None,),
            "seed_index": tuple(range(self.seeds)),
        }

    def derive_task_seed(self, scenario: Optional[str], shards: Optional[int],
                         scheduler: str, n_nodes: Optional[int],
                         loss_rate: Optional[float], seed_index: int) -> int:
        """Deterministic per-task seed from the master seed and the task's
        axis coordinates — stable under grid growth, independent of task
        position."""
        return derive_seed(
            self.master_seed, "sweep", self.name, "task",
            scenario if scenario is not None else "<inherit>",
            shards if shards is not None else "<inherit>",
            scheduler,
            n_nodes if n_nodes is not None else "<inherit>",
            f"{float(loss_rate)!r}" if loss_rate is not None else "<inherit>",
            seed_index)

    def expand(self) -> List[SweepTask]:
        """The ordered task list of this grid (deterministic: axis order is
        fixed, seeds are coordinate-derived, collisions raise)."""
        tasks: List[SweepTask] = []
        seen: Dict[int, str] = {}
        axes = self.axis_values()
        for index, point in enumerate(product(*axes.values())):
            scenario, shards, scheduler, n_nodes, loss_rate, seed_index = point
            seed = self.derive_task_seed(scenario, shards, scheduler, n_nodes,
                                         loss_rate, seed_index)
            task = SweepTask(index=index, scenario=scenario, shards=shards,
                             scheduler=scheduler, n_nodes=n_nodes,
                             loss_rate=loss_rate, seed_index=seed_index,
                             seed=seed)
            if seed in seen:  # pragma: no cover - 64-bit collision
                raise RuntimeError(
                    f"derived-seed collision between tasks {seen[seed]!r} "
                    f"and {task.task_id!r}; rename the sweep")
            seen[seed] = task.task_id
            tasks.append(task)
        return tasks

    # ------------------------------------------------------------ realization
    def scenario_for(self, task: SweepTask) -> ScenarioSpec:
        """The concrete scenario this task runs: the named library scenario
        with swept axes overriding its sizing, or a synthesized single-phase
        window scenario."""
        if task.scenario is not None:
            from repro.scenarios.library import get_scenario
            spec = get_scenario(task.scenario)
            overrides: Dict[str, Any] = {}
            if task.n_nodes is not None:
                overrides["subscribers"] = task.n_nodes
            if task.shards is not None:
                overrides["shards"] = task.shards
                overrides["facade"] = "sharded" if task.shards > 1 else "single"
            if task.loss_rate is not None:
                overrides["phases"] = tuple(
                    replace(phase, loss_rate=task.loss_rate)
                    for phase in spec.phases)
            return spec.with_overrides(**overrides) if overrides else spec
        shards = task.shards if task.shards is not None else self.base.shards
        n_nodes = task.n_nodes if task.n_nodes is not None \
            else DEFAULT_WINDOW_SUBSCRIBERS
        loss_rate = task.loss_rate if task.loss_rate is not None else 0.0
        return ScenarioSpec(
            name=f"{self.name}-window",
            description=f"synthesized disruption window of sweep {self.name!r}",
            facade="sharded" if shards > 1 else "single",
            shards=shards,
            subscribers=n_nodes,
            topics=("sweep",),
            phases=(PhaseSpec(name="window", rounds=self.window_rounds,
                              settle_rounds=self.settle_rounds,
                              publications=self.publications,
                              joins=self.joins, crashes=self.crashes,
                              loss_rate=loss_rate),))

    def system_for(self, task: SweepTask,
                   scenario: Optional[ScenarioSpec] = None) -> SystemSpec:
        """The deployment spec of this task's system: the base spec (protocol
        and simulator knobs included) specialized to the task's resolved
        topology, derived seed and scheduler.  Pass the already-resolved
        ``scenario`` when you have one to avoid rebuilding it."""
        if scenario is None:
            scenario = self.scenario_for(task)
        return self.base.with_overrides(
            topology=scenario.facade, shards=scenario.shards,
            seed=task.seed, scheduler=task.scheduler,
            max_rounds=scenario.max_stabilize_rounds)

    # ------------------------------------------------------------ serialization
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict; :meth:`from_dict` inverts it losslessly."""
        return {
            "name": self.name,
            "base": self.base.to_dict(),
            "n_nodes": list(self.n_nodes),
            "shards": list(self.shards),
            "schedulers": list(self.schedulers),
            "scenarios": list(self.scenarios),
            "loss_rates": list(self.loss_rates),
            "seeds": self.seeds,
            "window_rounds": self.window_rounds,
            "settle_rounds": self.settle_rounds,
            "publications": self.publications,
            "joins": self.joins,
            "crashes": self.crashes,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepSpec":
        payload = dict(data)
        base = payload.get("base")
        if isinstance(base, dict):
            payload["base"] = SystemSpec.from_dict(base)
        return cls(**payload)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))

    def with_overrides(self, **kwargs: object) -> "SweepSpec":
        """A copy with top-level fields replaced."""
        return replace(self, **kwargs)
