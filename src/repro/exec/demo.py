"""Built-in demonstration sweeps for ``repro-sweep`` and experiment E13.

Each entry is a ``seed -> SweepSpec`` factory sized to run in well under a
minute, so the demos double as CI smoke coverage of the execution layer.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.api.spec import SystemSpec
from repro.exec.sweep import SweepSpec


def e13_loss_shards(seed: int = 0) -> SweepSpec:
    """The E13 campaign: a loss-rate × shard-count grid of synthesized
    disruption windows — does sharding the control plane survive lossy
    links and churn as well as the single supervisor does?"""
    return SweepSpec(
        name="e13-loss-shards",
        base=SystemSpec(seed=seed),
        n_nodes=(12,),
        shards=(1, 4),
        loss_rates=(0.0, 0.1),
        publications=6,
        joins=3,
        crashes=2,
        window_rounds=20.0,
    )


def scenario_replicates(seed: int = 0) -> SweepSpec:
    """Three seed replicates of the ``lossy-network`` library scenario —
    the smallest useful statistical sweep."""
    return SweepSpec(
        name="scenario-replicates",
        base=SystemSpec(seed=seed),
        scenarios=("lossy-network",),
        seeds=3,
    )


#: name -> sweep factory; ordered for ``--list-demos`` output.
DEMO_SWEEPS: Dict[str, Callable[[int], SweepSpec]] = {
    "e13-loss-shards": e13_loss_shards,
    "scenario-replicates": scenario_replicates,
}


def demo_names() -> List[str]:
    return list(DEMO_SWEEPS)


def get_demo_sweep(name: str, seed: int = 0) -> SweepSpec:
    """Build the named demo sweep, with a helpful error on typos."""
    factory = DEMO_SWEEPS.get(name)
    if factory is None:
        raise KeyError(f"unknown demo sweep {name!r}; "
                       f"available: {', '.join(DEMO_SWEEPS)}")
    return factory(seed)
