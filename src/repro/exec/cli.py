"""Command-line campaign runner for the execution layer.

::

    python -m repro.exec --list-demos
    python -m repro.exec --demo e13-loss-shards --jobs 4
    python -m repro.exec --demo e13-loss-shards --print-spec > sweep.json
    python -m repro.exec --spec sweep.json --jobs 8 --out campaign.json

Also installed as the ``repro-sweep`` console script.  ``--jobs 1`` runs
inline, ``--jobs N`` fans tasks across N worker processes; the written
campaign artifact is byte-identical either way.  Exit status is 0 iff every
task's invariants held.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.exec.backend import FAILURE_KEY, is_failure_result
from repro.exec.campaign import CampaignReport, CampaignRunner
from repro.exec.demo import DEMO_SWEEPS, get_demo_sweep
from repro.exec.sweep import SweepSpec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="Expand a declarative parameter sweep over the pub-sub "
                    "system and run it as a campaign across CPU cores "
                    "(see repro.exec).")
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--spec", metavar="FILE",
                        help="run the SweepSpec JSON in FILE")
    source.add_argument("--demo", metavar="NAME",
                        help="run a built-in demo sweep (see --list-demos)")
    parser.add_argument("--list-demos", action="store_true",
                        help="list the built-in demo sweeps and exit")
    parser.add_argument("--print-spec", action="store_true",
                        help="print the selected sweep's JSON and exit "
                             "(scaffold for custom --spec files)")
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed for --demo sweeps (default 0); "
                             "--spec files carry their own")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1 = inline; the "
                             "campaign artifact is byte-identical either way)")
    parser.add_argument("--out", type=Path, metavar="FILE",
                        help="write the campaign artifact JSON to FILE")
    parser.add_argument("--json", action="store_true",
                        help="print the campaign artifact as canonical JSON "
                             "instead of the summary table")
    parser.add_argument("--fault-tolerant", action="store_true",
                        help="record a crashed/hung worker as a structured "
                             "TaskFailure entry in the campaign artifact "
                             "instead of aborting the whole campaign")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="kill any worker running longer than this "
                             "(process-pool jobs only)")
    parser.add_argument("--retries", type=int, default=0,
                        help="re-run a failed task up to N times "
                             "(deterministic exponential backoff) before "
                             "recording the failure")
    return parser


def _summary(report: CampaignReport) -> str:
    from repro.experiments.report import format_table

    rows = []
    for entry in report.tasks:
        if "failure" in entry:
            failure = entry["failure"]
            rows.append((entry["task_id"], "-", "-", "-",
                         f"FAIL (worker {failure['kind']}, "
                         f"{failure['attempts']} attempts)"))
            continue
        scenario = entry["report"].get("scenario") or {}
        rows.append((entry["task_id"], scenario.get("subscribers_initial", "-"),
                     scenario.get("shards", "-"), len(scenario.get("phases", [])),
                     "PASS" if entry["report"]["passed"] else "FAIL"))
    table = format_table(["task", "n", "shards", "phases", "verdict"], rows)
    verdict = "PASS" if report.passed else \
        f"FAIL ({', '.join(report.failed_tasks)})"
    return (f"campaign {report.name!r} (master seed {report.master_seed}, "
            f"{len(report.tasks)} tasks)\n\n{table}\n\nresult: {verdict}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_demos:
        for name, factory in DEMO_SWEEPS.items():
            sweep = factory(0)
            blurb = ((factory.__doc__ or "").strip().splitlines() or [""])[0]
            print(f"{name:22s} {len(sweep.expand()):3d} tasks   {blurb}")
        return 0

    if args.spec:
        sweep = SweepSpec.from_json(Path(args.spec).read_text())
    elif args.demo:
        try:
            sweep = get_demo_sweep(args.demo, seed=args.seed)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
    else:
        build_parser().print_help()
        return 2

    if args.print_spec:
        print(sweep.to_json(indent=2))
        return 0

    total = len(sweep.expand())
    print(f"sweep {sweep.name!r}: {total} tasks, master seed "
          f"{sweep.master_seed}, jobs={args.jobs}", file=sys.stderr)

    def progress(task: Any, report: Any, done: int, _total: int) -> None:
        if is_failure_result(report):
            verdict = f"FAIL (worker {report[FAILURE_KEY]['kind']})"
        else:
            verdict = "PASS" if report["passed"] else "FAIL"
        print(f"  [{done}/{total}] {task.task_id:40s} {verdict}",
              file=sys.stderr)

    report = CampaignRunner(sweep, jobs=max(args.jobs, 1),
                            fault_tolerant=args.fault_tolerant,
                            task_timeout=args.task_timeout,
                            retries=max(args.retries, 0)).run(progress=progress)
    if args.out:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(report.to_json(indent=2) + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    print(report.to_json() if args.json else _summary(report))
    return 0 if report.passed else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
