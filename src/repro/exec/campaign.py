"""Fan a :class:`~repro.exec.sweep.SweepSpec` out and merge the results.

:class:`CampaignRunner` expands a sweep into tasks, dispatches them through
an execution backend (inline or process pool — ``--jobs N``), streams
per-task progress, and merges every task's
:class:`~repro.api.report.RunReport` into one :class:`CampaignReport`.

The campaign artifact is **byte-reproducible**: same sweep + same master
seed ⇒ identical ``to_json`` bytes, at any ``--jobs`` value.  Three rules
make that hold: per-task seeds are derived from coordinates (not schedule),
every result crosses the backend's canonical JSON boundary (so inline and
subprocess runs agree on structure), and wall-clock values are scrubbed
from the merged reports (walls are streamed to the progress callback
instead — they belong to the console, not the artifact).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.exec.backend import (
    ExecBackend,
    TaskSpec,
    backend_for_jobs,
    failure_from_result,
    is_failure_result,
)
from repro.exec.sweep import SweepSpec, SweepTask

#: ``progress(task, report_dict, done, total)`` with ``task`` a
#: :class:`SweepTask`; invoked in completion order.
CampaignProgressFn = Callable[[SweepTask, Dict[str, Any], int, int], None]

#: Dotted reference of the task function every sweep point runs.
SCENARIO_TASK_FN = "repro.exec.tasks:run_scenario_task"


@dataclass
class CampaignReport:
    """Merged result of one campaign: the sweep, and one entry per task
    (axis coordinates + derived seed + the task's full ``RunReport`` dict).

    ``to_json`` is canonical (sorted keys, compact separators) and contains
    no wall-clock values, so identical campaigns produce identical bytes.
    """

    name: str
    master_seed: int
    sweep: Dict[str, Any]
    tasks: List[Dict[str, Any]] = field(default_factory=list)
    schema: int = 1
    #: cluster-wide telemetry merged across every task's RunReport
    #: (histograms add exactly, span summaries aggregate; see
    #: :func:`repro.telemetry.recorder.merge_telemetry_dicts`) — ``None``
    #: for campaigns run without ``telemetry=True`` on the sweep base, so
    #: their artifacts keep the historical byte shape.
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def passed(self) -> bool:
        return all(self.claims().values())

    @property
    def failed_tasks(self) -> List[str]:
        return [task_id for task_id, ok in self.claims().items() if not ok]

    @property
    def task_failures(self) -> List[Dict[str, Any]]:
        """The structured :class:`~repro.exec.backend.TaskFailure` dicts of
        every task whose *worker* crashed, hung or emitted garbage (empty
        for campaigns run without ``fault_tolerant=True``)."""
        return [entry["failure"] for entry in self.tasks if "failure" in entry]

    def claims(self) -> Dict[str, bool]:
        """Flat ``task_id -> all invariants hold`` map.  A task whose worker
        failed (a ``"failure"`` entry instead of a ``"report"``) never
        passes: an unverifiable invariant is a failed claim."""
        return {entry["task_id"]: ("report" in entry
                                   and bool(entry["report"]["passed"]))
                for entry in self.tasks}

    # ------------------------------------------------------------ serialization
    def to_dict(self) -> Dict[str, Any]:
        out = {
            "schema": self.schema,
            "name": self.name,
            "master_seed": self.master_seed,
            "sweep": self.sweep,
            "tasks": [dict(entry) for entry in self.tasks],
            "passed": self.passed,
        }
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        if indent is not None:
            return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignReport":
        return cls(name=data["name"], master_seed=data["master_seed"],
                   sweep=dict(data["sweep"]),
                   tasks=[dict(entry) for entry in data.get("tasks", [])],
                   schema=data.get("schema", 1),
                   telemetry=data.get("telemetry"))

    @classmethod
    def from_json(cls, text: str) -> "CampaignReport":
        return cls.from_dict(json.loads(text))


class CampaignRunner:
    """Expand a sweep, fan its tasks out, merge the reports."""

    def __init__(self, sweep: SweepSpec, jobs: int = 1,
                 backend: Optional[ExecBackend] = None,
                 fault_tolerant: bool = False,
                 task_timeout: Optional[float] = None,
                 retries: int = 0) -> None:
        self.sweep = sweep
        self.backend = backend if backend is not None else backend_for_jobs(
            jobs, timeout=task_timeout, retries=retries,
            fault_tolerant=fault_tolerant)

    def task_specs(self, tasks: Optional[List[SweepTask]] = None) -> List[TaskSpec]:
        """The backend tasks this campaign dispatches, in sweep order."""
        specs: List[TaskSpec] = []
        for task in tasks if tasks is not None else self.sweep.expand():
            scenario = self.sweep.scenario_for(task)
            specs.append(TaskSpec(
                task_id=task.task_id,
                fn=SCENARIO_TASK_FN,
                payload={
                    "spec": scenario.to_dict(),
                    "system": self.sweep.system_for(task, scenario).to_dict(),
                    "seed": task.seed,
                    "scheduler": task.scheduler,
                }))
        return specs

    def run(self, progress: Optional[CampaignProgressFn] = None) -> CampaignReport:
        tasks = self.sweep.expand()
        by_id = {task.task_id: task for task in tasks}

        def on_result(spec: TaskSpec, result: Dict[str, Any],
                      done: int, total: int) -> None:
            if progress is not None:
                progress(by_id[spec.task_id], result, done, total)

        results = self.backend.run(self.task_specs(tasks), progress=on_result)
        entries = []
        for task, report in zip(tasks, results):
            if is_failure_result(report):
                # A fault-tolerant backend absorbed a worker crash/timeout:
                # record the structured failure (retry count included) in the
                # task's slot instead of aborting the whole campaign.
                entries.append({**task.to_dict(),
                                "failure": failure_from_result(report).to_dict()})
                continue
            report = dict(report)
            # Walls are machine noise; the artifact must be byte-reproducible.
            report["wall_seconds"] = None
            entries.append({**task.to_dict(), "report": report})
        # Entries are zipped in sweep order regardless of backend, so the
        # merge order is fixed and the merged block is byte-identical at any
        # --jobs value; it is None (no key at all) without telemetry.
        from repro.telemetry.recorder import merge_telemetry_dicts
        telemetry = merge_telemetry_dicts(
            entry["report"].get("telemetry") for entry in entries
            if "report" in entry)
        return CampaignReport(name=self.sweep.name,
                              master_seed=self.sweep.master_seed,
                              sweep=self.sweep.to_dict(), tasks=entries,
                              telemetry=telemetry)


def run_campaign(sweep: SweepSpec, jobs: int = 1,
                 progress: Optional[CampaignProgressFn] = None,
                 fault_tolerant: bool = False,
                 task_timeout: Optional[float] = None,
                 retries: int = 0) -> CampaignReport:
    """Convenience wrapper: expand, dispatch across ``jobs`` cores, merge."""
    return CampaignRunner(sweep, jobs=jobs, fault_tolerant=fault_tolerant,
                          task_timeout=task_timeout,
                          retries=retries).run(progress=progress)
