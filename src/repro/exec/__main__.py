"""``python -m repro.exec`` — the sweep/campaign CLI (see repro.exec.cli)."""

import sys

from repro.exec.cli import main

if __name__ == "__main__":
    sys.exit(main())
