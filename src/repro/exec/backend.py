"""Generic execution backends: run named tasks inline or across CPU cores.

A *task* is a :class:`TaskSpec`: a dotted reference to a task function
(``"package.module:function"``) plus a JSON-safe payload dict.  Task
functions live in :mod:`repro.exec.tasks` (or anywhere importable) and
return a JSON-safe dict.  Keeping tasks nameable and payloads serializable
is what lets the same task run in-process or in a fresh interpreter.

Two backends implement the same contract:

* :class:`InlineBackend` — run every task serially in this process;
* :class:`ProcessPoolBackend` — run up to ``jobs`` tasks concurrently,
  **each in its own fresh interpreter** (``python -m repro.exec.worker``).
  Per-task subprocess isolation is generalized from the perf suite's
  ``case_runner``: no warm caches leak between tasks, and process-wide
  measurements (peak RSS) genuinely belong to one task.

Backend choice never changes results: both backends canonicalize every
result through a JSON round-trip (sorted keys), so a result dict has the
same key order and value types whether it crossed a process boundary or
not.  ``backend.run`` returns results in *task submission order* regardless
of completion order; the optional progress callback streams completions as
they happen.

Fault tolerance
---------------
Long campaigns (sweeps, fuzz runs) cannot afford one pathological task
killing the whole batch.  Both backends therefore support a
``fault_tolerant`` mode in which a crashed, hung or garbage-emitting task
yields a structured :class:`TaskFailure` *result* (a dict under the
:data:`FAILURE_KEY` key, recognizable via :func:`is_failure_result`)
instead of raising through ``run``.  :class:`ProcessPoolBackend`
additionally enforces a per-task wall-clock ``timeout`` (the hung worker
is killed), and both backends retry a failing task up to ``retries``
times with a deterministic exponential backoff schedule before recording
the failure.  The default (``fault_tolerant=False``, no timeout, no
retries) preserves the historical fail-fast contract.
"""

from __future__ import annotations

import importlib
import json
import os
import subprocess
import sys
import time
import traceback
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

#: ``progress(task, result, done, total)`` — invoked once per finished task,
#: in completion order (== submission order on the inline backend).
ProgressFn = Callable[["TaskSpec", Dict[str, Any], int, int], None]


@dataclass(frozen=True)
class TaskSpec:
    """One named unit of work: a task-function reference plus its payload."""

    task_id: str
    fn: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.task_id:
            raise ValueError("task_id must be non-empty")
        if ":" not in self.fn:
            raise ValueError(
                f"task fn must be 'package.module:function', got {self.fn!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {"task_id": self.task_id, "fn": self.fn,
                "payload": dict(self.payload)}


#: Key under which a :class:`TaskFailure` dict rides in a result slot when a
#: fault-tolerant backend absorbed the failure instead of raising.
FAILURE_KEY = "__task_failure__"

#: The failure kinds a backend can record.
FAILURE_KINDS = ("crash", "timeout", "bad-output")

#: How many trailing characters of a worker's stderr/traceback a
#: :class:`TaskFailure` keeps (enough to triage, bounded so campaign
#: artifacts stay small).
STDERR_TAIL_CHARS = 2000


@dataclass(frozen=True)
class TaskFailure:
    """Structured record of one task that failed after all retry attempts.

    ``kind`` is one of :data:`FAILURE_KINDS`: ``"crash"`` (nonzero exit or
    in-process exception), ``"timeout"`` (the worker exceeded the per-task
    wall-clock budget and was killed) or ``"bad-output"`` (the worker exited
    0 but printed something that is not a JSON object).  ``attempts`` counts
    every execution, so ``attempts - 1`` is the number of retries consumed.
    """

    task_id: str
    fn: str
    kind: str
    attempts: int = 1
    exit_code: Optional[int] = None
    timeout_seconds: Optional[float] = None
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValueError(
                f"failure kind must be one of {FAILURE_KINDS}, got {self.kind!r}")
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "task_id": self.task_id,
            "fn": self.fn,
            "kind": self.kind,
            "attempts": self.attempts,
            "exit_code": self.exit_code,
            "timeout_seconds": self.timeout_seconds,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TaskFailure":
        return cls(task_id=data["task_id"], fn=data["fn"], kind=data["kind"],
                   attempts=int(data.get("attempts", 1)),
                   exit_code=data.get("exit_code"),
                   timeout_seconds=data.get("timeout_seconds"),
                   detail=data.get("detail", ""))

    def as_result(self) -> Dict[str, Any]:
        """This failure in result-slot form (``{FAILURE_KEY: {...}}``)."""
        return {FAILURE_KEY: self.to_dict()}

    def raise_(self) -> None:
        """Re-raise this failure as the RuntimeError the fail-fast contract
        would have produced."""
        raise RuntimeError(
            f"task {self.task_id!r} ({self.fn}) failed [{self.kind}] after "
            f"{self.attempts} attempt(s):\n{self.detail}".rstrip())


def is_failure_result(result: Optional[Dict[str, Any]]) -> bool:
    """True iff ``result`` is a failure record a fault-tolerant backend
    produced (see :data:`FAILURE_KEY`)."""
    return isinstance(result, dict) and FAILURE_KEY in result


def failure_from_result(result: Dict[str, Any]) -> TaskFailure:
    """The :class:`TaskFailure` inside a failure result slot."""
    return TaskFailure.from_dict(result[FAILURE_KEY])


def retry_backoff_schedule(retries: int, base: float = 0.1) -> List[float]:
    """The deterministic sleep (seconds) before each retry attempt:
    ``base * 2**i`` for retry ``i``.  Pure function of its arguments — the
    schedule never depends on clocks or load, so retried campaigns stay
    reproducible in everything but wall time."""
    return [base * (2 ** i) for i in range(max(retries, 0))]


def resolve_task_fn(ref: str) -> Callable[[Dict[str, Any]], Dict[str, Any]]:
    """Import and return the task function named by ``"module:function"``."""
    module_name, _, fn_name = ref.partition(":")
    if not module_name or not fn_name:
        raise ValueError(
            f"task fn must be 'package.module:function', got {ref!r}")
    module = importlib.import_module(module_name)
    fn = getattr(module, fn_name, None)
    if not callable(fn):
        raise ValueError(f"{ref!r} does not name a callable task function")
    return fn


def canonicalize(result: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize a task result exactly as a process boundary would: JSON
    round-trip with sorted keys.  Tuples become lists, dict keys become
    strings in sorted order — identical no matter which backend ran the
    task."""
    return json.loads(json.dumps(result, sort_keys=True))


def worker_env() -> Dict[str, str]:
    """Child-process environment with this tree's ``repro`` importable."""
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root if not existing else \
        src_root + os.pathsep + existing
    return env


class ExecBackend:
    """Contract shared by all backends (see module docstring)."""

    def run(self, tasks: Sequence[TaskSpec],
            progress: Optional[ProgressFn] = None) -> List[Dict[str, Any]]:
        raise NotImplementedError


class InlineBackend(ExecBackend):
    """Run every task serially in this process (``--jobs 1``).

    ``fault_tolerant=True`` converts an exception raised by a task function
    into a :class:`TaskFailure` result slot (kind ``"crash"``, the traceback
    tail as detail) after ``retries`` deterministic re-attempts, mirroring
    the process pool's contract.  Per-task timeouts cannot be enforced
    in-process; inline fault tolerance covers crashes only.
    """

    def __init__(self, fault_tolerant: bool = False, retries: int = 0) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.fault_tolerant = fault_tolerant
        self.retries = retries

    def run_one(self, task: TaskSpec) -> Dict[str, Any]:
        """Run one task in-process; absorb failures when fault-tolerant."""
        attempts = 0
        while True:
            attempts += 1
            try:
                fn = resolve_task_fn(task.fn)
                return canonicalize(fn(dict(task.payload)))
            except Exception:
                if attempts <= self.retries:
                    continue
                if not self.fault_tolerant:
                    raise
                tail = traceback.format_exc()[-STDERR_TAIL_CHARS:]
                return canonicalize(TaskFailure(
                    task_id=task.task_id, fn=task.fn, kind="crash",
                    attempts=attempts, detail=tail).as_result())

    def run(self, tasks: Sequence[TaskSpec],
            progress: Optional[ProgressFn] = None) -> List[Dict[str, Any]]:
        tasks = list(tasks)
        results: List[Dict[str, Any]] = []
        for index, task in enumerate(tasks):
            result = self.run_one(task)
            results.append(result)
            if progress is not None:
                progress(task, result, index + 1, len(tasks))
        return results


class ProcessPoolBackend(ExecBackend):
    """Run up to ``jobs`` tasks concurrently, each in a fresh interpreter.

    Concurrency is managed with a thread pool whose workers each drive one
    ``python -m repro.exec.worker`` subprocess to completion, so every task
    gets per-process isolation while the parent stays a single process.

    ``timeout`` (seconds, per attempt) kills a hung worker;
    ``retries``/``retry_backoff`` re-run a crashed/hung/garbled task on the
    deterministic :func:`retry_backoff_schedule` before giving up.  With
    ``fault_tolerant=True`` the final failure becomes a :class:`TaskFailure`
    result slot; otherwise it raises, preserving the historical fail-fast
    contract.
    """

    def __init__(self, jobs: int = 1, timeout: Optional[float] = None,
                 retries: int = 0, retry_backoff: float = 0.1,
                 fault_tolerant: bool = False) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.fault_tolerant = fault_tolerant

    # ------------------------------------------------------------- one attempt
    def _attempt(self, task: TaskSpec) -> "Dict[str, Any] | TaskFailure":
        """One subprocess execution: the result dict, or a single-attempt
        :class:`TaskFailure` describing what went wrong."""
        try:
            proc = subprocess.run(
                [sys.executable, "-m", "repro.exec.worker"],
                input=json.dumps(task.to_dict()),
                capture_output=True, text=True, env=worker_env(),
                timeout=self.timeout)
        except subprocess.TimeoutExpired as exc:
            stderr = exc.stderr or b""
            if isinstance(stderr, bytes):
                stderr = stderr.decode("utf-8", "replace")
            return TaskFailure(
                task_id=task.task_id, fn=task.fn, kind="timeout",
                timeout_seconds=self.timeout,
                detail=(f"worker exceeded {self.timeout:g}s and was killed\n"
                        + stderr)[-STDERR_TAIL_CHARS:].rstrip())
        if proc.returncode != 0:
            return TaskFailure(
                task_id=task.task_id, fn=task.fn, kind="crash",
                exit_code=proc.returncode,
                detail=proc.stderr[-STDERR_TAIL_CHARS:].rstrip())
        try:
            result = json.loads(proc.stdout)
            if not isinstance(result, dict):
                raise ValueError("worker output is not a JSON object")
        except ValueError:
            return TaskFailure(
                task_id=task.task_id, fn=task.fn, kind="bad-output",
                exit_code=proc.returncode,
                detail=("worker exited 0 but emitted invalid JSON:\n"
                        + proc.stdout[-STDERR_TAIL_CHARS:]).rstrip())
        return result

    def run_one(self, task: TaskSpec) -> Dict[str, Any]:
        """Run one task to completion (retries included) and return its
        result dict — or its failure slot when fault-tolerant."""
        backoffs = retry_backoff_schedule(self.retries, self.retry_backoff)
        failure: Optional[TaskFailure] = None
        for attempt in range(self.retries + 1):
            if attempt > 0 and backoffs[attempt - 1] > 0:
                time.sleep(backoffs[attempt - 1])
            outcome = self._attempt(task)
            if not isinstance(outcome, TaskFailure):
                return outcome
            failure = TaskFailure(
                task_id=outcome.task_id, fn=outcome.fn, kind=outcome.kind,
                attempts=attempt + 1, exit_code=outcome.exit_code,
                timeout_seconds=outcome.timeout_seconds,
                detail=outcome.detail)
        assert failure is not None
        if self.fault_tolerant:
            return canonicalize(failure.as_result())
        failure.raise_()
        raise AssertionError("unreachable")  # pragma: no cover

    def run(self, tasks: Sequence[TaskSpec],
            progress: Optional[ProgressFn] = None) -> List[Dict[str, Any]]:
        tasks = list(tasks)
        results: List[Optional[Dict[str, Any]]] = [None] * len(tasks)
        done = 0
        pool = ThreadPoolExecutor(max_workers=self.jobs)
        try:
            futures = {pool.submit(self.run_one, task): index
                       for index, task in enumerate(tasks)}
            for future in as_completed(futures):
                index = futures[future]
                results[index] = future.result()
                done += 1
                if progress is not None:
                    progress(tasks[index], results[index], done, len(tasks))
        except BaseException:
            # Fail fast: drop every not-yet-started task instead of letting
            # the rest of the batch run to completion behind the error.
            pool.shutdown(wait=True, cancel_futures=True)
            raise
        pool.shutdown(wait=True)
        return results  # type: ignore[return-value]


def backend_for_jobs(jobs: int = 1, timeout: Optional[float] = None,
                     retries: int = 0,
                     fault_tolerant: bool = False) -> ExecBackend:
    """The conventional mapping every ``--jobs N`` flag uses: 1 means inline
    (no subprocess overhead), anything larger means a process pool.  The
    hardening knobs forward to the chosen backend (``timeout`` applies only
    to the process pool — inline tasks cannot be interrupted)."""
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if jobs == 1:
        return InlineBackend(fault_tolerant=fault_tolerant, retries=retries)
    return ProcessPoolBackend(jobs=jobs, timeout=timeout, retries=retries,
                              fault_tolerant=fault_tolerant)
