"""Generic execution backends: run named tasks inline or across CPU cores.

A *task* is a :class:`TaskSpec`: a dotted reference to a task function
(``"package.module:function"``) plus a JSON-safe payload dict.  Task
functions live in :mod:`repro.exec.tasks` (or anywhere importable) and
return a JSON-safe dict.  Keeping tasks nameable and payloads serializable
is what lets the same task run in-process or in a fresh interpreter.

Two backends implement the same contract:

* :class:`InlineBackend` — run every task serially in this process;
* :class:`ProcessPoolBackend` — run up to ``jobs`` tasks concurrently,
  **each in its own fresh interpreter** (``python -m repro.exec.worker``).
  Per-task subprocess isolation is generalized from the perf suite's
  ``case_runner``: no warm caches leak between tasks, and process-wide
  measurements (peak RSS) genuinely belong to one task.

Backend choice never changes results: both backends canonicalize every
result through a JSON round-trip (sorted keys), so a result dict has the
same key order and value types whether it crossed a process boundary or
not.  ``backend.run`` returns results in *task submission order* regardless
of completion order; the optional progress callback streams completions as
they happen.
"""

from __future__ import annotations

import importlib
import json
import os
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

#: ``progress(task, result, done, total)`` — invoked once per finished task,
#: in completion order (== submission order on the inline backend).
ProgressFn = Callable[["TaskSpec", Dict[str, Any], int, int], None]


@dataclass(frozen=True)
class TaskSpec:
    """One named unit of work: a task-function reference plus its payload."""

    task_id: str
    fn: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.task_id:
            raise ValueError("task_id must be non-empty")
        if ":" not in self.fn:
            raise ValueError(
                f"task fn must be 'package.module:function', got {self.fn!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {"task_id": self.task_id, "fn": self.fn,
                "payload": dict(self.payload)}


def resolve_task_fn(ref: str) -> Callable[[Dict[str, Any]], Dict[str, Any]]:
    """Import and return the task function named by ``"module:function"``."""
    module_name, _, fn_name = ref.partition(":")
    if not module_name or not fn_name:
        raise ValueError(
            f"task fn must be 'package.module:function', got {ref!r}")
    module = importlib.import_module(module_name)
    fn = getattr(module, fn_name, None)
    if not callable(fn):
        raise ValueError(f"{ref!r} does not name a callable task function")
    return fn


def canonicalize(result: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize a task result exactly as a process boundary would: JSON
    round-trip with sorted keys.  Tuples become lists, dict keys become
    strings in sorted order — identical no matter which backend ran the
    task."""
    return json.loads(json.dumps(result, sort_keys=True))


def worker_env() -> Dict[str, str]:
    """Child-process environment with this tree's ``repro`` importable."""
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root if not existing else \
        src_root + os.pathsep + existing
    return env


class ExecBackend:
    """Contract shared by all backends (see module docstring)."""

    def run(self, tasks: Sequence[TaskSpec],
            progress: Optional[ProgressFn] = None) -> List[Dict[str, Any]]:
        raise NotImplementedError


class InlineBackend(ExecBackend):
    """Run every task serially in this process (``--jobs 1``)."""

    def run(self, tasks: Sequence[TaskSpec],
            progress: Optional[ProgressFn] = None) -> List[Dict[str, Any]]:
        tasks = list(tasks)
        results: List[Dict[str, Any]] = []
        for index, task in enumerate(tasks):
            fn = resolve_task_fn(task.fn)
            result = canonicalize(fn(dict(task.payload)))
            results.append(result)
            if progress is not None:
                progress(task, result, index + 1, len(tasks))
        return results


class ProcessPoolBackend(ExecBackend):
    """Run up to ``jobs`` tasks concurrently, each in a fresh interpreter.

    Concurrency is managed with a thread pool whose workers each drive one
    ``python -m repro.exec.worker`` subprocess to completion, so every task
    gets per-process isolation while the parent stays a single process.
    """

    def __init__(self, jobs: int = 1) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs

    def run_one(self, task: TaskSpec) -> Dict[str, Any]:
        """Run one task in a fresh interpreter and return its result dict."""
        proc = subprocess.run(
            [sys.executable, "-m", "repro.exec.worker"],
            input=json.dumps(task.to_dict()),
            capture_output=True, text=True, env=worker_env())
        if proc.returncode != 0:
            raise RuntimeError(
                f"task {task.task_id!r} ({task.fn}) failed "
                f"(exit {proc.returncode}):\n{proc.stderr.strip()}")
        return json.loads(proc.stdout)

    def run(self, tasks: Sequence[TaskSpec],
            progress: Optional[ProgressFn] = None) -> List[Dict[str, Any]]:
        tasks = list(tasks)
        results: List[Optional[Dict[str, Any]]] = [None] * len(tasks)
        done = 0
        pool = ThreadPoolExecutor(max_workers=self.jobs)
        try:
            futures = {pool.submit(self.run_one, task): index
                       for index, task in enumerate(tasks)}
            for future in as_completed(futures):
                index = futures[future]
                results[index] = future.result()
                done += 1
                if progress is not None:
                    progress(tasks[index], results[index], done, len(tasks))
        except BaseException:
            # Fail fast: drop every not-yet-started task instead of letting
            # the rest of the batch run to completion behind the error.
            pool.shutdown(wait=True, cancel_futures=True)
            raise
        pool.shutdown(wait=True)
        return results  # type: ignore[return-value]


def backend_for_jobs(jobs: int = 1) -> ExecBackend:
    """The conventional mapping every ``--jobs N`` flag uses: 1 means inline
    (no subprocess overhead), anything larger means a process pool."""
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    return InlineBackend() if jobs == 1 else ProcessPoolBackend(jobs=jobs)
