"""Parallel execution layer: backends, sweeps, campaigns.

The scaling substrate every driver shares.  Three pieces:

* **Backends** (:mod:`repro.exec.backend`) — run named, JSON-payloaded
  tasks either inline (:class:`InlineBackend`) or across CPU cores with
  per-task fresh-interpreter isolation (:class:`ProcessPoolBackend`).
  Every ``--jobs N`` flag in the tree (``bench_suite``,
  ``generate_experiments_md``, ``repro-scenarios``, ``repro-sweep``) maps
  onto these two backends, and results are byte-identical either way:
  both canonicalize through the same JSON boundary.
* **Sweeps** (:mod:`repro.exec.sweep`) — a declarative
  :class:`SweepSpec` parameter grid (scenario × shards × scheduler ×
  n_nodes × loss_rate × seed replicates) over a base
  :class:`~repro.api.spec.SystemSpec`, with lossless JSON round-trip and
  deterministic, coordinate-derived per-task seeds.
* **Campaigns** (:mod:`repro.exec.campaign`) — :class:`CampaignRunner`
  fans a sweep out through a backend, streams progress, and merges the
  per-task :class:`~repro.api.report.RunReport`\\ s into one
  byte-reproducible :class:`CampaignReport` artifact.

CLI: ``python -m repro.exec`` (installed as ``repro-sweep``).
"""

from repro.exec.backend import (
    FAILURE_KEY,
    ExecBackend,
    InlineBackend,
    ProcessPoolBackend,
    TaskFailure,
    TaskSpec,
    backend_for_jobs,
    failure_from_result,
    is_failure_result,
)
from repro.exec.campaign import CampaignReport, CampaignRunner, run_campaign
from repro.exec.demo import DEMO_SWEEPS, demo_names, get_demo_sweep
from repro.exec.sweep import SweepSpec, SweepTask

__all__ = [
    "ExecBackend",
    "FAILURE_KEY",
    "InlineBackend",
    "ProcessPoolBackend",
    "TaskFailure",
    "TaskSpec",
    "backend_for_jobs",
    "failure_from_result",
    "is_failure_result",
    "SweepSpec",
    "SweepTask",
    "CampaignReport",
    "CampaignRunner",
    "run_campaign",
    "DEMO_SWEEPS",
    "demo_names",
    "get_demo_sweep",
]
