"""Subprocess entry point of the execution layer: one task in, one JSON out.

``python -m repro.exec.worker`` reads a single JSON task object
(``{"task_id": ..., "fn": "module:function", "payload": {...}}``) from
stdin, runs it, and prints the result dict as JSON (sorted keys) to stdout.
:class:`~repro.exec.backend.ProcessPoolBackend` drives one worker per task,
which keeps every task isolated in a fresh interpreter — the generalization
of what ``repro.perf.case_runner`` did for bench cases only.
"""

from __future__ import annotations

import json
import sys

from repro.exec.backend import resolve_task_fn


def main(argv: "list[str] | None" = None) -> int:
    task = json.load(sys.stdin)
    fn = resolve_task_fn(task["fn"])
    result = fn(dict(task.get("payload") or {}))
    json.dump(result, sys.stdout, sort_keys=True)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
