"""Suite runner and ``BENCH_*.json`` bookkeeping.

The bench trail is a sequence of ``BENCH_<id>.json`` files at the repo root,
one per PR that ran the suite (``CURRENT_BENCH_ID`` names this PR's file).
Each file records, per case, the minimum wall time over N repeats, the event
throughput and the subprocess peak RSS, plus enough environment metadata to
interpret the absolute numbers.  :func:`compare_benchmarks` diffs two files
case-wise and flags wall-time regressions beyond a threshold — the check CI
runs against the committed baseline on every push.

Absolute wall times are machine-dependent; the trail is meaningful because
CI hardware is homogeneous and local comparisons are made against a baseline
measured on the same machine.  The regression check therefore compares
*ratios*, never absolute numbers across environments.
"""

from __future__ import annotations

import json
import platform
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.exec.backend import ProcessPoolBackend, TaskSpec
from repro.perf.cases import BENCH_CASES, QUICK_CASES, get_case

#: Id of the bench file this tree writes (bumped by PRs that re-measure).
CURRENT_BENCH_ID = 6

#: Default wall-time regression tolerance (0.20 == fail beyond +20 %).
DEFAULT_THRESHOLD = 0.20

#: Default peak-RSS regression tolerance (0.25 == fail beyond +25 %).
#: Memory is steadier than wall time across runs, but allocator noise and
#: arena over-allocation justify a little more headroom than zero.
DEFAULT_RSS_THRESHOLD = 0.25

_BENCH_PATTERN = re.compile(r"BENCH_(\d+)\.json$")


#: Name of the statistic :func:`compare_benchmarks` gates on when a result
#: carries its full repeat list.
GATE_STATISTIC_ALL = "min(wall_seconds_all)"
#: Fallback statistic for results without the repeat list (pre-PR-6 files).
GATE_STATISTIC_SINGLE = "wall_seconds"
#: Memory statistic when the per-repeat RSS trail is recorded (its min is
#: the first repeat's high-water mark — the cleanest memory reading).
GATE_RSS_ALL = "min(peak_rss_kb_all)"
#: Fallback memory statistic for documents written before the trail existed.
GATE_RSS_SINGLE = "peak_rss_kb"


@dataclass
class Regression:
    """One case whose gated statistic regressed beyond its threshold.

    Historically wall-time-only, hence the field names: ``baseline_wall`` /
    ``current_wall`` hold the compared values for *whatever* ``metric`` says
    (``"wall_seconds"`` or ``"peak_rss_kb"``) — keeping the original
    positional construction ``Regression(case, baseline, current)`` valid.
    """

    case: str
    baseline_wall: float
    current_wall: float
    #: which statistic produced the compared values (see
    #: :data:`GATE_STATISTIC_ALL` / :data:`GATE_STATISTIC_SINGLE` /
    #: :data:`GATE_RSS_ALL` / :data:`GATE_RSS_SINGLE`)
    statistic: str = GATE_STATISTIC_SINGLE
    #: the regressed quantity: ``"wall_seconds"`` or ``"peak_rss_kb"``
    metric: str = "wall_seconds"

    @property
    def ratio(self) -> float:
        return self.current_wall / self.baseline_wall

    def __str__(self) -> str:
        if self.metric == "peak_rss_kb":
            return (f"{self.case}: {self.baseline_wall:.0f}kB -> "
                    f"{self.current_wall:.0f}kB peak RSS ({self.ratio:.2f}x, "
                    f"gated on {self.statistic})")
        return (f"{self.case}: {self.baseline_wall:.3f}s -> "
                f"{self.current_wall:.3f}s ({self.ratio:.2f}x, "
                f"gated on {self.statistic})")


def _case_task(name: str, repeats: int) -> TaskSpec:
    """The execution-layer task measuring one bench case."""
    get_case(name)  # fail fast on unknown names, before paying a subprocess
    return TaskSpec(task_id=name, fn="repro.exec.tasks:run_bench_case",
                    payload={"case": name, "repeats": repeats})


def run_case_subprocess(name: str, repeats: int = 1) -> Dict[str, object]:
    """Run one case in a fresh interpreter via the execution layer."""
    return ProcessPoolBackend(jobs=1).run([_case_task(name, repeats)])[0]


def run_suite(cases: Optional[Iterable[str]] = None, repeats: int = 3,
              quick: bool = False,
              progress=None, jobs: int = 1) -> Dict[str, object]:
    """Execute the matrix and return the bench document (not yet written).

    ``quick`` selects :data:`~repro.perf.cases.QUICK_CASES` with two repeats
    (min wall time wins, which filters one-off machine-noise spikes that a
    single repeat would report as regressions) — the CI shape.  ``progress``
    is an optional ``callable(case_name, result)`` invoked after each case
    (the CLI prints a table line from it).

    Every case always runs in its own fresh interpreter
    (:class:`~repro.exec.backend.ProcessPoolBackend` — the isolation the
    measurements rely on); ``jobs`` only sets how many run concurrently.
    ``jobs > 1`` finishes the matrix much faster but lets cases contend for
    cores, so keep the serial default for wall times meant to be compared
    against a committed baseline.
    """
    if quick:
        selected: Sequence[str] = tuple(cases) if cases else QUICK_CASES
        repeats = 2
    else:
        selected = tuple(cases) if cases else tuple(c.name for c in BENCH_CASES)
    backend = ProcessPoolBackend(jobs=max(jobs, 1))
    tasks = [_case_task(name, repeats) for name in selected]

    def on_result(task, result, done, total):
        if progress is not None:
            progress(task.task_id, result)

    raw = backend.run(tasks, progress=on_result)
    results: Dict[str, Dict[str, object]] = {
        name: {k: v for k, v in result.items() if k != "name"}
        for name, result in zip(selected, raw)}
    return {
        "schema": 1,
        "bench_id": CURRENT_BENCH_ID,
        "label": "PR 10: columnar node-state arena + vectorized delivery "
                 "core - dense node/stat columns, channel-free fast records, "
                 "density-adaptive wheel buckets",
        "notes": [
            "wall times are machine-dependent; compare ratios, not absolutes",
            "BENCH_5 measured core_2k_wheel at 582k events/s on this "
            "machine; the PR 10 arena engine re-measures the same workload "
            "at ~1.3x per-event throughput with byte-identical "
            "experiment/scenario reports (the golden suite pins this)",
            "large-storm scaling is the point of the arena: core_20k_wheel "
            "and core_50k_wheel run ~2x their BENCH_5 throughput (flat "
            "per-event cost past cache is the tentpole claim), and the new "
            "core_100k_wheel case extends the matrix to 100k nodes",
            "peak_rss_kb_all records the per-repeat RSS high-water trail; "
            "the regression gate compares its min at a 25% threshold",
        ],
        "created_unix": round(time.time()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": quick,
        "repeats": repeats,
        "jobs": max(jobs, 1),
        "cases": results,
    }


# ------------------------------------------------------------------ bench I/O
def bench_path(root: Path, bench_id: int = CURRENT_BENCH_ID) -> Path:
    return Path(root) / f"BENCH_{bench_id}.json"


def write_bench(document: Dict[str, object], path: Path) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def load_bench(path: Path) -> Dict[str, object]:
    return json.loads(Path(path).read_text())


def find_previous_bench(root: Path,
                        before_id: int = CURRENT_BENCH_ID) -> Optional[Path]:
    """The highest-id ``BENCH_<n>.json`` under ``root`` with ``n < before_id``
    (the file this PR's measurements are compared against)."""
    best: Optional[Path] = None
    best_id = -1
    for candidate in Path(root).glob("BENCH_*.json"):
        match = _BENCH_PATTERN.match(candidate.name)
        if match is None:
            continue
        found_id = int(match.group(1))
        if best_id < found_id < before_id:
            best, best_id = candidate, found_id
    return best


# ---------------------------------------------------------------- comparison
def gating_wall(result: Dict[str, object]) -> tuple[Optional[float], str]:
    """The wall-time statistic the regression gate compares for ``result``.

    Gates on the **minimum** of ``wall_seconds_all`` when the repeat list is
    recorded — the min over repeats is the stable statistic on noisy
    machines, where a one-off scheduling spike in whichever repeat happened
    to land in ``wall_seconds`` would otherwise read as a regression.  Falls
    back to the single ``wall_seconds`` field for documents written before
    the repeat list existed.  Returns ``(wall, statistic_name)``.
    """
    walls = result.get("wall_seconds_all")
    if isinstance(walls, (list, tuple)) and walls:
        return min(walls), GATE_STATISTIC_ALL
    return result.get("wall_seconds"), GATE_STATISTIC_SINGLE


def gating_rss(result: Dict[str, object]) -> tuple[Optional[float], str]:
    """The peak-RSS statistic the memory gate compares for ``result``.

    Gates on the **minimum** of ``peak_rss_kb_all`` when the per-repeat
    trail is recorded: ``ru_maxrss`` is a process-wide high-water mark, so
    the trail is non-decreasing and its min (the first repeat) excludes
    fragmentation later repeats accumulate on top.  Falls back to the single
    ``peak_rss_kb`` field for older documents.  Returns
    ``(rss_kb, statistic_name)``.
    """
    trail = result.get("peak_rss_kb_all")
    if isinstance(trail, (list, tuple)) and trail and None not in trail:
        return min(trail), GATE_RSS_ALL
    return result.get("peak_rss_kb"), GATE_RSS_SINGLE


def compare_benchmarks(current: Dict[str, object], baseline: Dict[str, object],
                       threshold: float = DEFAULT_THRESHOLD,
                       rss_threshold: float = DEFAULT_RSS_THRESHOLD
                       ) -> List[Regression]:
    """Wall-time and peak-RSS regressions of ``current`` vs ``baseline``
    beyond their thresholds (cases present in both documents; missing/new
    cases are not regressions — the matrix is allowed to grow).  Walls are
    reduced with :func:`gating_wall`, memory with :func:`gating_rss`; each
    reported :class:`Regression` records which metric and statistic gated
    it."""
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    if rss_threshold < 0:
        raise ValueError("rss_threshold must be non-negative")
    regressions: List[Regression] = []
    baseline_cases: Dict[str, Dict] = baseline.get("cases", {})
    for name, result in current.get("cases", {}).items():
        base = baseline_cases.get(name)
        if base is None:
            continue
        base_wall, base_stat = gating_wall(base)
        wall, stat = gating_wall(result)
        if base_wall and wall and wall > base_wall * (1.0 + threshold):
            statistic = stat if stat == base_stat else f"{stat} vs {base_stat}"
            regressions.append(Regression(name, base_wall, wall, statistic))
        base_rss, base_rss_stat = gating_rss(base)
        rss, rss_stat = gating_rss(result)
        if base_rss and rss and rss > base_rss * (1.0 + rss_threshold):
            statistic = (rss_stat if rss_stat == base_rss_stat
                         else f"{rss_stat} vs {base_rss_stat}")
            regressions.append(Regression(name, base_rss, rss, statistic,
                                          metric="peak_rss_kb"))
    return regressions
