"""Persistent performance-regression harness (the ``BENCH_*.json`` trail).

The package turns "is the simulator getting faster or slower?" into a
recorded, comparable artifact:

* :mod:`repro.perf.cases` — the fixed benchmark matrix, every system built
  through the declarative :class:`~repro.api.spec.SystemSpec` API: the
  engine-core timeout-storm runs (2k/5k nodes, heap vs wheel), the facade
  workloads (single vs sharded-4), and the E11/E12 experiment/scenario
  drivers;
* :mod:`repro.perf.suite` — the runner: executes each case in a fresh
  subprocess (clean interpreter state, honest per-case peak RSS), records
  wall times / events per second / peak RSS, writes ``BENCH_<n>.json`` at
  the repo root and compares it against the previous ``BENCH_*.json`` with
  a configurable regression threshold;
* :mod:`repro.perf.case_runner` — DEPRECATED shim; the subprocess entry
  point is ``python -m repro.exec.worker`` (see :mod:`repro.exec`).

``scripts/bench_suite.py`` is the command-line front door; CI runs it with
``--quick`` on every push and fails on >20 % wall-time regressions against
the committed baseline.
"""

from repro.perf.cases import BENCH_CASES, QUICK_CASES, BenchCase, get_case
from repro.perf.suite import (
    CURRENT_BENCH_ID,
    compare_benchmarks,
    find_previous_bench,
    load_bench,
    run_suite,
)

__all__ = [
    "BENCH_CASES",
    "QUICK_CASES",
    "BenchCase",
    "get_case",
    "CURRENT_BENCH_ID",
    "compare_benchmarks",
    "find_previous_bench",
    "load_bench",
    "run_suite",
]
