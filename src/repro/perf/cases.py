"""The fixed benchmark matrix of the perf-regression harness.

Every case is deterministic (fixed seeds, fixed workloads) and built through
the unified :class:`~repro.api.spec.SystemSpec` API, so the matrix measures
exactly the code paths users run:

* ``core_*`` — the engine-core timeout storm: n nodes, one message per node
  per Timeout, the event mix that dominates large simulations.  The
  ``core_2k_wheel`` case is *the* headline number: the seed 2k-node ×
  200-round run whose trajectory the README tracks (3.20 s seed → 2.67 s
  PR 1 → this PR).
* ``facade_*`` — full-protocol workloads through the facades: 8 topics × 8
  subscribers stabilized then run for 40 maintenance rounds, single
  supervisor vs the sharded-4 cluster.
* ``e11`` / ``e12`` — the experiment/scenario drivers (sharded scaling and
  the adversarial scenario suite), covering the cluster layer and the
  adversary-instrumented network path.

Cases return ``(events, payload)`` where ``events`` is the number of
simulator events processed (``None`` when the driver runs several internal
simulators) — the suite divides it by wall time for events/sec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

#: (events_processed_or_None, opaque payload kept alive until timing ends)
CaseResult = Tuple[Optional[int], object]


@dataclass(frozen=True)
class BenchCase:
    """One named, deterministic benchmark."""

    name: str
    description: str
    run: Callable[[], CaseResult]


# ----------------------------------------------------------------- core micro
def _core_storm(nodes: int, rounds: int, scheduler: str) -> CaseResult:
    from repro.sim.engine import Simulator, SimulatorConfig
    from repro.sim.node import ProtocolNode

    class Chatter(ProtocolNode):
        """One message per timeout to a fixed neighbour."""

        __slots__ = ()

        def on_timeout(self) -> None:
            self.send(self.node_id % nodes + 1, "Ping", sender=self.node_id)

        def on_Ping(self, sender, topic=None) -> None:
            pass

    sim = Simulator(SimulatorConfig(seed=42, scheduler=scheduler))
    for i in range(nodes):
        sim.add_node(Chatter(i + 1))
    sim.run_rounds(rounds)
    return sim.steps_executed, sim


# ------------------------------------------------------------ facade workload
def _facade_workload(topology: str, shards: int) -> CaseResult:
    from repro.api import SystemSpec, build_stable

    spec = SystemSpec(topology=topology, shards=shards, seed=11)
    system, _ = build_stable(spec, topics=[f"topic-{i}" for i in range(8)],
                             subscribers_per_topic=8)
    system.run_rounds(40)
    return system.sim.steps_executed, system


# ------------------------------------------------------- experiment / scenario
def _e11() -> CaseResult:
    from repro.experiments.experiments import e11_sharded_scaling

    return None, e11_sharded_scaling(seed=21)


def _e12() -> CaseResult:
    from repro.experiments.experiments import e12_adversarial_scenarios

    return None, e12_adversarial_scenarios(seed=5)


#: The full matrix, in execution order.
BENCH_CASES: List[BenchCase] = [
    BenchCase("core_2k_wheel",
              "engine core: 2000 nodes x 200 rounds, timeout wheel "
              "(the headline seed run)",
              lambda: _core_storm(2_000, 200, "wheel")),
    BenchCase("core_2k_heap",
              "engine core: 2000 nodes x 200 rounds, binary heap",
              lambda: _core_storm(2_000, 200, "heap")),
    BenchCase("core_5k_wheel",
              "engine core: 5000 nodes x 80 rounds, timeout wheel",
              lambda: _core_storm(5_000, 80, "wheel")),
    BenchCase("core_5k_heap",
              "engine core: 5000 nodes x 80 rounds, binary heap",
              lambda: _core_storm(5_000, 80, "heap")),
    BenchCase("core_20k_wheel",
              "engine core: 20000 nodes x 20 rounds, timeout wheel "
              "(production-scale storm; arena columns + density-adaptive "
              "buckets keep per-event cost near core_2k)",
              lambda: _core_storm(20_000, 20, "wheel")),
    BenchCase("core_50k_wheel",
              "engine core: 50000 nodes x 8 rounds, timeout wheel "
              "(large-storm scaling gate: per-event cost within ~2x of "
              "core_2k_wheel despite a working set past cache)",
              lambda: _core_storm(50_000, 8, "wheel")),
    BenchCase("core_100k_wheel",
              "engine core: 100000 nodes x 4 rounds, timeout wheel "
              "(the arena's headline scale; heap-vs-wheel event-log parity "
              "at this size is pinned by tests/test_arena.py)",
              lambda: _core_storm(100_000, 4, "wheel")),
    BenchCase("facade_single",
              "single supervisor: 8 topics x 8 subscribers stabilized "
              "+ 40 rounds",
              lambda: _facade_workload("single", 1)),
    BenchCase("facade_sharded4",
              "sharded-4 cluster: 8 topics x 8 subscribers stabilized "
              "+ 40 rounds",
              lambda: _facade_workload("sharded", 4)),
    BenchCase("e11_sharded_scaling",
              "experiment E11: per-supervisor load vs K (seed 21)",
              _e11),
    BenchCase("e12_scenarios",
              "experiment E12: adversarial scenario suite (seed 5)",
              _e12),
]

#: Subset CI runs on every push (fast, still covers engine + cluster +
#: adversary paths).
QUICK_CASES = ("core_2k_wheel", "facade_sharded4", "e12_scenarios")

_BY_NAME: Dict[str, BenchCase] = {case.name: case for case in BENCH_CASES}


def get_case(name: str) -> BenchCase:
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown bench case {name!r}; known cases: {known}") from None
