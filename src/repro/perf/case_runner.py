"""DEPRECATED shim — the per-case subprocess entry point moved to
:mod:`repro.exec`.

This module pioneered the fresh-interpreter-per-case isolation the perf
suite relies on; since the :mod:`repro.exec` layer landed (PR 5) the
measurement loop lives in :func:`repro.exec.tasks.run_bench_case` and the
suite dispatches cases through
:class:`~repro.exec.backend.ProcessPoolBackend` (``python -m
repro.exec.worker``).  Importing this module, calling :func:`measure`, or
running the CLI emits a :class:`DeprecationWarning`; use::

    python -m repro.exec.worker   # suite-internal protocol

or simply ``scripts/bench_suite.py --cases <name>`` to measure one case by
hand.  The stub will be removed one PR after nothing warns.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings

_MESSAGE = ("repro.perf.case_runner is deprecated; the measurement loop "
            "lives in repro.exec.tasks.run_bench_case and the suite "
            "dispatches through repro.exec.backend.ProcessPoolBackend "
            "(use scripts/bench_suite.py --cases <name> for one-off runs)")

warnings.warn(_MESSAGE, DeprecationWarning, stacklevel=2)


def measure(name: str, repeats: int) -> dict:
    """Deprecated alias for :func:`repro.exec.tasks.run_bench_case`."""
    warnings.warn(_MESSAGE, DeprecationWarning, stacklevel=2)
    from repro.exec.tasks import run_bench_case

    return run_bench_case({"case": name, "repeats": repeats})


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("case", help="bench case name (see repro.perf.cases)")
    parser.add_argument("--repeats", type=int, default=1)
    args = parser.parse_args(argv)
    json.dump(measure(args.case, max(args.repeats, 1)), sys.stdout)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
