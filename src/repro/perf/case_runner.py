"""Subprocess entry point of the perf suite: run one case, print one JSON.

Usage (normally via :func:`repro.perf.suite.run_suite`)::

    python -m repro.perf.case_runner core_2k_wheel --repeats 3

Since the :mod:`repro.exec` layer landed, this module is a thin shim: the
measurement loop lives in :func:`repro.exec.tasks.run_bench_case` and the
suite dispatches cases through
:class:`~repro.exec.backend.ProcessPoolBackend` (``python -m
repro.exec.worker``), which generalizes the per-case fresh-interpreter
isolation this runner pioneered.  The CLI remains for running one case by
hand.
"""

from __future__ import annotations

import argparse
import json
import sys


def measure(name: str, repeats: int) -> dict:
    from repro.exec.tasks import run_bench_case

    return run_bench_case({"case": name, "repeats": repeats})


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("case", help="bench case name (see repro.perf.cases)")
    parser.add_argument("--repeats", type=int, default=1)
    args = parser.parse_args(argv)
    json.dump(measure(args.case, max(args.repeats, 1)), sys.stdout)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
