"""Subprocess entry point of the perf suite: run one case, print one JSON.

Usage (normally via :func:`repro.perf.suite.run_suite`)::

    python -m repro.perf.case_runner core_2k_wheel --repeats 3

Running each case in a fresh interpreter keeps measurements honest: no
warm caches or leftover garbage from earlier cases, and the process-wide
peak-RSS high-water mark (``getrusage``) genuinely belongs to the case.
"""

from __future__ import annotations

import argparse
import json
import sys
import time


def measure(name: str, repeats: int) -> dict:
    from repro.perf.cases import get_case

    case = get_case(name)
    walls = []
    events = None
    for _ in range(repeats):
        start = time.perf_counter()
        events, payload = case.run()
        walls.append(time.perf_counter() - start)
        del payload
    try:
        import resource
        peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except ImportError:  # pragma: no cover - non-POSIX
        peak_rss_kb = None
    wall = min(walls)  # min is the stable statistic on noisy machines
    return {
        "name": name,
        "description": case.description,
        "wall_seconds": round(wall, 4),
        "wall_seconds_all": [round(w, 4) for w in walls],
        "events": events,
        "events_per_sec": round(events / wall) if events else None,
        "peak_rss_kb": peak_rss_kb,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("case", help="bench case name (see repro.perf.cases)")
    parser.add_argument("--repeats", type=int, default=1)
    args = parser.parse_args(argv)
    json.dump(measure(args.case, max(args.repeats, 1)), sys.stdout)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
