"""Structural graph metrics: degrees, diameter, congestion and balance.

These metrics back experiments E1 (skip-ring structure), E7 (flooding depth)
and E8 (congestion/balance comparison against Chord and skip graphs).  All of
them operate on plain :class:`networkx.Graph` objects plus, for the balance
metric, a list of ring positions in ``[0, 1)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import networkx as nx
import numpy as np


@dataclass
class DegreeStats:
    minimum: int
    maximum: int
    mean: float
    num_edges: int

    def as_row(self) -> Tuple[int, int, float, int]:
        return (self.minimum, self.maximum, round(self.mean, 3), self.num_edges)


def degree_statistics(graph: nx.Graph) -> DegreeStats:
    degrees = [d for _, d in graph.degree()]
    if not degrees:
        return DegreeStats(0, 0, 0.0, 0)
    return DegreeStats(
        minimum=int(min(degrees)),
        maximum=int(max(degrees)),
        mean=float(sum(degrees)) / len(degrees),
        num_edges=graph.number_of_edges(),
    )


def diameter(graph: nx.Graph) -> int:
    """Hop diameter; 0 for graphs with fewer than two nodes.  Raises if the
    graph is disconnected (which in this code base indicates a bug)."""
    if graph.number_of_nodes() <= 1:
        return 0
    return int(nx.diameter(graph))


def average_shortest_path(graph: nx.Graph) -> float:
    if graph.number_of_nodes() <= 1:
        return 0.0
    return float(nx.average_shortest_path_length(graph))


@dataclass
class CongestionStats:
    """Per-node load statistics when routing messages between sampled pairs."""

    samples: int
    max_load: int
    mean_load: float
    p99_load: float
    load_imbalance: float  # max / mean

    def as_row(self) -> Tuple[int, int, float, float, float]:
        return (self.samples, self.max_load, round(self.mean_load, 3),
                round(self.p99_load, 3), round(self.load_imbalance, 3))


def routing_congestion(graph: nx.Graph, samples: int = 500, seed: int = 0,
                       pairs: Optional[Sequence[Tuple[int, int]]] = None) -> CongestionStats:
    """Route ``samples`` random source/destination pairs along shortest paths
    and measure how the forwarding load distributes over the nodes.

    The supervised skip ring places nodes perfectly evenly on the ring, which
    yields a more balanced load than Chord's or a skip graph's randomised
    placement — the congestion claim of Section 1.3.
    """
    nodes = list(graph.nodes())
    if len(nodes) < 2:
        return CongestionStats(0, 0, 0.0, 0.0, 1.0)
    rng = random.Random(seed)
    load: Dict[int, int] = {node: 0 for node in nodes}
    if pairs is None:
        pairs = [tuple(rng.sample(nodes, 2)) for _ in range(samples)]
    count = 0
    for source, target in pairs:
        try:
            path = nx.shortest_path(graph, source, target)
        except nx.NetworkXNoPath:  # pragma: no cover - graphs here are connected
            continue
        count += 1
        for node in path[1:-1]:
            load[node] += 1
        load[source] += 1
        load[target] += 1
    values = np.array(list(load.values()), dtype=float)
    mean = float(values.mean()) if len(values) else 0.0
    return CongestionStats(
        samples=count,
        max_load=int(values.max()) if len(values) else 0,
        mean_load=mean,
        p99_load=float(np.percentile(values, 99)) if len(values) else 0.0,
        load_imbalance=float(values.max() / mean) if mean > 0 else 1.0,
    )


def broadcast_load(graph: nx.Graph, source: int) -> Dict[str, float]:
    """Message load of a flood from ``source``: every node forwards to all of
    its neighbours on first receipt, so node ``v`` sends ``deg(v)`` messages
    (minus one for the edge the message arrived on).  Returns totals and the
    per-node maximum."""
    degrees = dict(graph.degree())
    if not degrees:
        return {"total_messages": 0.0, "max_per_node": 0.0, "mean_per_node": 0.0}
    sends = {node: max(deg - (0 if node == source else 1), 0)
             for node, deg in degrees.items()}
    total = float(sum(sends.values()) + degrees.get(source, 0) - sends.get(source, 0))
    values = np.array(list(sends.values()), dtype=float)
    return {
        "total_messages": total,
        "max_per_node": float(values.max()),
        "mean_per_node": float(values.mean()),
    }


def position_balance(positions: Iterable[float]) -> Dict[str, float]:
    """Balance of node placement on the unit ring.

    Returns the ratio between the largest and the smallest gap between
    consecutive positions plus the coefficient of variation of the gaps.  The
    supervised skip ring achieves a max/min ratio of at most 2 at any time
    (labels bisect the largest gaps in order), whereas hash-based placement
    (Chord, skip graphs) has gaps varying by a ``Θ(log n)`` factor with high
    probability.
    """
    pos = sorted(float(p) % 1.0 for p in positions)
    if len(pos) < 2:
        return {"max_min_ratio": 1.0, "cv": 0.0, "max_gap": 1.0, "min_gap": 1.0}
    gaps = [pos[i + 1] - pos[i] for i in range(len(pos) - 1)]
    gaps.append(1.0 - pos[-1] + pos[0])
    arr = np.array(gaps, dtype=float)
    min_gap = float(arr.min())
    max_gap = float(arr.max())
    mean = float(arr.mean())
    return {
        "max_min_ratio": max_gap / min_gap if min_gap > 0 else float("inf"),
        "cv": float(arr.std() / mean) if mean > 0 else 0.0,
        "max_gap": max_gap,
        "min_gap": min_gap,
    }


def hop_histogram(graph: nx.Graph, source: int) -> Dict[int, int]:
    """Histogram of hop distances from ``source`` (flood delivery depths)."""
    lengths = nx.single_source_shortest_path_length(graph, source)
    histogram: Dict[int, int] = {}
    for dist in lengths.values():
        histogram[dist] = histogram.get(dist, 0) + 1
    return histogram
