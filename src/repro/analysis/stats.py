"""Small statistics helpers shared by experiments and benchmarks."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np


@dataclass
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
        }


def summarize(values: Iterable[float]) -> Summary:
    data = np.array(list(values), dtype=float)
    if data.size == 0:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return Summary(
        count=int(data.size),
        mean=float(data.mean()),
        std=float(data.std(ddof=1)) if data.size > 1 else 0.0,
        minimum=float(data.min()),
        maximum=float(data.max()),
        median=float(np.median(data)),
    )


def confidence_interval(values: Sequence[float], confidence: float = 0.95) -> Tuple[float, float]:
    """Normal-approximation confidence interval for the mean.

    Sufficient for the experiment harness, which reports trends rather than
    tight error bars; returns ``(mean, mean)`` for fewer than two samples.
    """
    data = np.array(list(values), dtype=float)
    if data.size == 0:
        return (0.0, 0.0)
    mean = float(data.mean())
    if data.size < 2:
        return (mean, mean)
    std_err = float(data.std(ddof=1)) / math.sqrt(data.size)
    # z-value for the requested two-sided confidence level
    z = {0.90: 1.645, 0.95: 1.96, 0.99: 2.576}.get(round(confidence, 2), 1.96)
    return (mean - z * std_err, mean + z * std_err)


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio used in speedup/overhead columns."""
    if denominator == 0:
        return float("inf") if numerator > 0 else 1.0
    return numerator / denominator
