"""Analysis helpers: legitimacy predicates, graph metrics and statistics."""

from repro.analysis.convergence import (
    LegitimacyReport,
    ring_legitimate,
    publications_converged,
    count_correct_labels,
    edge_set_signature,
)
from repro.analysis.graph_metrics import (
    degree_statistics,
    diameter,
    routing_congestion,
    broadcast_load,
    position_balance,
)
from repro.analysis.stats import summarize, confidence_interval, Summary

__all__ = [
    "LegitimacyReport",
    "ring_legitimate",
    "publications_converged",
    "count_correct_labels",
    "edge_set_signature",
    "degree_statistics",
    "diameter",
    "routing_congestion",
    "broadcast_load",
    "position_balance",
    "summarize",
    "confidence_interval",
    "Summary",
]
