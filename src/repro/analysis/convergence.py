"""Legitimate-state predicates and convergence measurement helpers.

The paper's notion of a legitimate state for ``BuildSR`` (Theorems 8/13)
requires, for a topic with member set ``M`` of size ``n``:

* the supervisor's database is uncorrupted and contains exactly the members
  of ``M`` under the labels ``l(0), ..., l(n-1)``;
* every member stores its correct label and its correct ring neighbours
  (the wrap-around edge being held in ``ring`` by the minimum and maximum
  nodes);
* every member's shortcut set contains exactly the locally computable
  shortcut labels, each mapped to the correct member.

For the publication layer (Theorems 17/23) the legitimate state additionally
requires every member's Patricia trie to hold the same publication set.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.labels import index_of, label_of
from repro.core.skip_ring import SkipRingTopology
from repro.core.subscriber import Subscriber
from repro.core.supervisor import Supervisor
from repro.sim.node import NodeRef


@dataclass
class LegitimacyReport:
    """Break-down of which legitimacy conditions currently hold."""

    topic: str
    n: int
    database_ok: bool = False
    labels_ok: bool = False
    ring_ok: bool = False
    shortcuts_ok: bool = False
    problems: List[str] = field(default_factory=list)

    @property
    def legitimate(self) -> bool:
        return self.database_ok and self.labels_ok and self.ring_ok and self.shortcuts_ok

    def add_problem(self, text: str) -> None:
        if len(self.problems) < 50:
            self.problems.append(text)


def ring_legitimate(supervisor: Supervisor, subscribers: Dict[NodeRef, Subscriber],
                    members: List[NodeRef], topic: str) -> LegitimacyReport:
    """Full legitimacy check of the overlay for one topic."""
    members = sorted(members)
    report = LegitimacyReport(topic=topic, n=len(members))
    db = supervisor.database(topic)

    report.database_ok = supervisor.is_database_legitimate(members, topic)
    if not report.database_ok:
        report.add_problem("supervisor database corrupted or membership mismatch")
        return report

    n = len(members)
    if n == 0:
        report.labels_ok = report.ring_ok = report.shortcuts_ok = True
        return report

    # Map ideal node index -> actual subscriber reference via the database.
    ref_of_index: Dict[int, NodeRef] = {}
    for label, ref in db.entries.items():
        assert ref is not None
        ref_of_index[index_of(label)] = ref
    topo = SkipRingTopology(n)

    labels_ok = True
    ring_ok = True
    shortcuts_ok = True
    for index in range(n):
        ref = ref_of_index[index]
        subscriber = subscribers.get(ref)
        if subscriber is None or subscriber.crashed:
            report.add_problem(f"database points to missing subscriber {ref}")
            labels_ok = ring_ok = shortcuts_ok = False
            break
        view = subscriber.view(topic, create=False)
        expected_label = label_of(index)
        if view is None or view.label != expected_label:
            labels_ok = False
            report.add_problem(f"subscriber {ref} has label "
                               f"{getattr(view, 'label', None)!r}, expected {expected_label!r}")
            continue
        spec = topo.expected_subscriber_state(index)
        expected_left = _expected_ref(spec["left"], ref_of_index)
        expected_right = _expected_ref(spec["right"], ref_of_index)
        expected_ring = _expected_ref(spec["ring"], ref_of_index)
        actual_left = view.left.ref if view.left is not None else None
        actual_right = view.right.ref if view.right is not None else None
        actual_ring = view.ring.ref if view.ring is not None else None
        if (actual_left, actual_right, actual_ring) != (expected_left, expected_right,
                                                        expected_ring):
            ring_ok = False
            report.add_problem(
                f"subscriber {ref}: ring neighbours (L={actual_left}, R={actual_right}, "
                f"W={actual_ring}) expected (L={expected_left}, R={expected_right}, "
                f"W={expected_ring})")
        expected_shortcuts = {
            lbl: ref_of_index[idx] for lbl, idx in spec["shortcuts"].items()  # type: ignore
        }
        actual_shortcuts = dict(view.shortcuts)
        if actual_shortcuts != expected_shortcuts:
            shortcuts_ok = False
            report.add_problem(
                f"subscriber {ref}: shortcuts {actual_shortcuts} expected {expected_shortcuts}")

    report.labels_ok = labels_ok
    report.ring_ok = ring_ok
    report.shortcuts_ok = shortcuts_ok
    return report


def _expected_ref(index: Optional[object], ref_of_index: Dict[int, NodeRef]) -> Optional[NodeRef]:
    if index is None:
        return None
    return ref_of_index[int(index)]  # type: ignore[arg-type]


def count_correct_labels(supervisor: Supervisor, subscribers: Dict[NodeRef, Subscriber],
                         members: List[NodeRef], topic: str) -> int:
    """How many members currently store the label the database assigns them
    (useful as a convergence progress series)."""
    db = supervisor.database(topic)
    correct = 0
    for label, ref in db.entries.items():
        if ref is None:
            continue
        subscriber = subscribers.get(ref)
        if subscriber is None:
            continue
        view = subscriber.view(topic, create=False)
        if view is not None and view.label == label:
            correct += 1
    return correct


def publications_converged(subscribers: Dict[NodeRef, Subscriber], members: List[NodeRef],
                           topic: str, expected_keys: Optional[Set[str]] = None) -> bool:
    """True if every member's trie holds the same publication set (and, if
    given, at least ``expected_keys``)."""
    key_sets: List[Set[str]] = []
    for ref in members:
        subscriber = subscribers.get(ref)
        if subscriber is None:
            return False
        view = subscriber.view(topic, create=False)
        key_sets.append(set(view.trie.keys()) if view is not None else set())
    if not key_sets:
        return expected_keys is None or not expected_keys
    first = key_sets[0]
    if any(keys != first for keys in key_sets[1:]):
        return False
    if expected_keys is not None and not expected_keys <= first:
        return False
    return True


def publication_counts(subscribers: Dict[NodeRef, Subscriber], members: List[NodeRef],
                       topic: str) -> List[int]:
    """Number of stored publications per member (progress series for E6)."""
    counts = []
    for ref in members:
        subscriber = subscribers.get(ref)
        view = subscriber.view(topic, create=False) if subscriber else None
        counts.append(len(view.trie) if view is not None else 0)
    return counts


def edge_set_signature(edges: Set[Tuple[int, int]]) -> str:
    """Stable hash of an undirected edge set, used by the closure experiment
    (E5) to detect any change of the explicit topology over time."""
    canonical = ";".join(f"{u}-{v}" for u, v in sorted(edges))
    return hashlib.sha256(canonical.encode("ascii")).hexdigest()
