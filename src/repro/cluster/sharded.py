"""The sharded multi-supervisor cluster facade.

The paper's system has one well-known supervisor that serves every
``Subscribe`` / ``Unsubscribe`` / ``GetConfiguration`` request — its admitted
scalability bottleneck.  :class:`ShardedPubSub` removes it by running **K
supervisors on one simulator** and assigning every topic to exactly one of
them with consistent hashing (:mod:`repro.cluster.sharding`).  Each topic's
BuildSR instance runs against its owning shard exactly as it would against
the single supervisor, so all of the paper's per-topic guarantees (Theorems
5, 7, 8, 13, 17) carry over shard-locally while the *aggregate* request load
spreads across the cluster.

The facade exposes the same API as
:class:`~repro.core.system.SupervisedPubSub` (both derive from
:class:`~repro.core.facade.PubSubFacadeBase`), so experiments and workloads
run unchanged against either.  Additionally it supports **shard failure**:
:meth:`crash_supervisor` crashes a supervisor node, removes it from the hash
ring, reassigns its topics to the surviving shards and prompts the affected
subscribers to re-register — the self-stabilizing protocol then rebuilds each
moved topic's skip ring under its new supervisor.

Example
-------
>>> from repro.cluster import ShardedPubSub
>>> cluster = ShardedPubSub(shards=4, seed=7)
>>> peers = [cluster.add_subscriber(f"topic-{i % 8}") for i in range(32)]
>>> cluster.run_until_legitimate()
True
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.sharding import ConsistentHashRing
from repro.core import messages as msg
from repro.core.config import ProtocolParams
from repro.core.facade import PubSubFacadeBase
from repro.core.subscriber import Subscriber
from repro.core.supervisor import Supervisor
from repro.sim.engine import SimulatorConfig
from repro.sim.node import NodeRef


class ShardedPubSub(PubSubFacadeBase):
    """K supervisors plus a dynamic set of subscribers on one simulator.

    Supervisors occupy node ids ``0 .. shards-1``; subscribers are numbered
    from ``shards`` upwards.  Topics are mapped to shards lazily, on first
    use, with bounded-loads consistent hashing, so the per-shard topic count
    stays within one of perfect balance no matter how few topics exist.
    """

    def __init__(self, shards: int = 4, seed: int = 0,
                 params: Optional[ProtocolParams] = None,
                 sim_config: Optional[SimulatorConfig] = None,
                 virtual_nodes: int = 64) -> None:
        if shards < 1:
            raise ValueError("a sharded system needs at least one supervisor")
        super().__init__(seed=seed, params=params, sim_config=sim_config,
                         first_subscriber_id=shards)
        self.ring = ConsistentHashRing(virtual_nodes=virtual_nodes)
        self.supervisors: Dict[NodeRef, Supervisor] = {}
        for shard_id in range(shards):
            supervisor = Supervisor(shard_id, params=self.params)
            self.sim.add_node(supervisor)
            self.supervisors[shard_id] = supervisor
            self.ring.add_shard(shard_id)
        self._topic_shard: Dict[str, NodeRef] = {}
        self._shard_topic_load: Dict[NodeRef, int] = {s: 0 for s in self.supervisors}

    # ---------------------------------------------------------------- sharding
    def shard_of(self, topic: str, pin: bool = True) -> NodeRef:
        """The shard (supervisor node id) owning ``topic``.

        The first *pinning* lookup assigns the topic via bounded-loads
        consistent hashing; later lookups are a dict hit.  This method is
        handed to every subscriber as its ``supervisor_resolver``, so
        protocol-level requests follow rebalancing automatically.

        ``pin=False`` answers "which shard *would* own this topic?" without
        recording the assignment — used by read-only inspection so that e.g.
        a legitimacy query for an unknown topic does not consume a
        bounded-loads capacity slot.
        """
        shard = self._topic_shard.get(topic)
        if shard is None:
            shard = self.ring.assign_balanced(topic, self._shard_topic_load)
            if pin:
                self._topic_shard[topic] = shard
                self._shard_topic_load[shard] += 1
        return shard

    def topic_assignment(self) -> Dict[str, NodeRef]:
        """Topic -> owning shard for every topic seen so far."""
        return dict(self._topic_shard)

    def live_shard_ids(self) -> List[NodeRef]:
        return [sid for sid, sup in sorted(self.supervisors.items()) if not sup.crashed]

    # ----------------------------------------------------- facade base contract
    def supervisor_of(self, topic: str) -> Supervisor:
        # Inspection must not pin: topics are assigned when a subscriber first
        # routes a request to them (via the resolver), not when queried.
        return self.supervisors[self.shard_of(topic, pin=False)]

    def supervisor_node_ids(self) -> List[NodeRef]:
        return sorted(self.supervisors)

    def _new_subscriber(self, node_id: NodeRef) -> Subscriber:
        return Subscriber(node_id, supervisor_id=0, params=self.params,
                          supervisor_resolver=self.shard_of)

    # ---------------------------------------------------------- shard failures
    def crash_supervisor(self, shard_id: NodeRef, rebalance: bool = True) -> List[str]:
        """Crash supervisor ``shard_id`` and rebalance its topics.

        The shard's virtual nodes leave the hash ring, every topic it owned is
        reassigned to a surviving shard (bounded-loads, so the extra topics
        spread evenly), and each affected subscriber is prompted to re-send
        ``Subscribe`` to the new owner.  The moved topics' overlays then
        reconverge through the ordinary self-stabilizing protocol; topics on
        surviving shards are untouched.  Returns the list of moved topics.
        """
        supervisor = self.supervisors.get(shard_id)
        if supervisor is None:
            raise ValueError(f"unknown supervisor shard id {shard_id!r}")
        if supervisor.crashed:
            raise ValueError(f"supervisor {shard_id} has already crashed")
        if len(self.live_shard_ids()) <= 1:
            raise ValueError("cannot crash the last live supervisor")
        self.sim.crash_node(shard_id)
        self.ring.remove_shard(shard_id)
        orphaned = sorted(t for t, s in self._topic_shard.items() if s == shard_id)
        self._shard_topic_load.pop(shard_id, None)
        if rebalance:
            for topic in orphaned:
                new_shard = self.ring.assign_balanced(topic, self._shard_topic_load)
                self._topic_shard[topic] = new_shard
                self._shard_topic_load[new_shard] += 1
                self._reannounce_members(topic)
        else:
            for topic in orphaned:
                del self._topic_shard[topic]
        self.hooks.emit_supervisor_crash(shard_id, orphaned)
        return orphaned

    def _reannounce_members(self, topic: str) -> None:
        """Prompt every intended member of ``topic`` to register with the
        topic's (new) supervisor on the protocol level.

        Without this nudge recovery still happens — subscribers periodically
        request their configuration (Section 3.2.1) and the new supervisor
        integrates unknown requesters — but only at the request probability
        ``1/(2^k k²)``, which is deliberately tiny in a stable system.
        """
        for node_id in self.registry.members(topic):
            subscriber = self.subscribers.get(node_id)
            if subscriber is None or subscriber.crashed:
                continue
            view = subscriber.view(topic, create=False)
            if view is not None and view.subscribed:
                view.send_supervisor(msg.SUBSCRIBE, node=node_id)

    # ---------------------------------------------------------------- metrics
    def shard_topic_counts(self) -> Dict[NodeRef, int]:
        """Live shard id -> number of topics currently assigned to it."""
        return {sid: self._shard_topic_load.get(sid, 0) for sid in self.live_shard_ids()}

    def max_supervisor_request_count(self) -> int:
        """Request load of the most loaded supervisor (the cluster's hotspot)."""
        counts = self.supervisor_request_counts()
        return max(counts.values()) if counts else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardedPubSub(shards={len(self.supervisors)}, "
                f"live={len(self.live_shard_ids())}, n={len(self.subscribers)}, "
                f"topics={len(self._topic_shard)}, t={self.sim.now:.1f})")


def build_stable_sharded_system(topics: List[str], subscribers_per_topic: int,
                                shards: int = 4, seed: int = 0,
                                params: Optional[ProtocolParams] = None,
                                sim_config: Optional[SimulatorConfig] = None,
                                max_rounds: int = 2_000) -> "ShardedPubSub":
    """Deprecated: use :func:`repro.api.builder.build_stable` with a sharded
    :class:`~repro.api.spec.SystemSpec`.

    Thin shim kept for old call sites; delegates to the unified bootstrap
    helper (same population and stabilization order, so results are
    seed-identical) and emits a :class:`DeprecationWarning`.
    """
    from repro.api.builder import build_stable, deprecated_build_stable_shim
    from repro.api.spec import SystemSpec

    deprecated_build_stable_shim(
        "build_stable_sharded_system",
        "build_stable(SystemSpec(topology='sharded', ...), topics=..., "
        "subscribers_per_topic=...)")
    spec = SystemSpec.from_legacy(seed=seed, params=params, sim_config=sim_config,
                                  topology="sharded", shards=shards,
                                  max_rounds=max_rounds)
    cluster, _ = build_stable(spec, topics=topics,
                              subscribers_per_topic=subscribers_per_topic)
    return cluster
