"""Sharded multi-supervisor cluster layer (beyond the paper).

The paper's single supervisor is its admitted scalability bottleneck: every
``Subscribe`` / ``Unsubscribe`` / ``GetConfiguration`` of every topic lands on
one node.  This package scales the system out by running one BuildSR
supervisor per *shard* and assigning topics to shards with (bounded-loads)
consistent hashing:

``sharding``
    :class:`~repro.cluster.sharding.ConsistentHashRing` — topic → shard
    placement with stability under shard arrival/departure.
``sharded``
    :class:`~repro.cluster.sharded.ShardedPubSub` — the cluster facade,
    API-compatible with :class:`~repro.core.system.SupervisedPubSub`,
    including supervisor-crash rebalancing.

See ``benchmarks/bench_e11_sharded_scaling.py`` for the scaling experiment
(per-supervisor request load vs. shard count K).
"""

from repro.cluster.sharding import ConsistentHashRing, spread
from repro.cluster.sharded import ShardedPubSub, build_stable_sharded_system

__all__ = [
    "ConsistentHashRing",
    "spread",
    "ShardedPubSub",
    "build_stable_sharded_system",
]
