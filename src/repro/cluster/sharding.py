"""Consistent hashing of topics onto supervisor shards.

The paper's single well-known supervisor handles every ``Subscribe`` /
``Unsubscribe`` / ``GetConfiguration`` request of every topic, which makes it
the scalability bottleneck of the whole system.  The cluster layer removes
that bottleneck by running one BuildSR supervisor *per shard* and assigning
each topic to exactly one shard.

:class:`ConsistentHashRing` provides the assignment.  Every shard owns
``virtual_nodes`` points on a 64-bit hash ring (positions come from
:func:`repro.pubsub.hashing.ring_position`); a topic is served by the shards
encountered clockwise from the topic's own ring position.  Consistent hashing
gives the two properties the cluster needs:

* **stability** — adding or removing one shard only moves the topics that
  hashed to that shard; everything else keeps its supervisor, and
* **spread** — with enough virtual nodes, topics distribute evenly.

Because a deployment typically has far fewer topics than a hash ring needs to
balance statistically, :meth:`ConsistentHashRing.assign_balanced` implements
the *bounded-loads* variant: walk the preference order and take the first
shard whose current topic count is below the balanced capacity
``ceil(assigned / shards)``.  This keeps the per-shard topic count within one
of perfect balance while still inheriting consistent hashing's stability.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter
from typing import Dict, List, Optional, Sequence

from repro.pubsub.hashing import ring_position


class ConsistentHashRing:
    """A 64-bit consistent-hash ring mapping string keys to shard ids."""

    def __init__(self, virtual_nodes: int = 64) -> None:
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.virtual_nodes = virtual_nodes
        self._points: List[int] = []          # sorted ring positions
        self._owner_at: Dict[int, int] = {}   # ring position -> shard id
        self._shards: Dict[int, List[int]] = {}  # shard id -> its positions

    # ------------------------------------------------------------------ shards
    def add_shard(self, shard_id: int) -> None:
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id} already on the ring")
        positions = []
        for replica in range(self.virtual_nodes):
            point = ring_position(f"shard:{shard_id}:{replica}")
            # Astronomically unlikely collision: nudge deterministically.
            while point in self._owner_at:
                point = (point + 1) % (1 << 64)
            self._owner_at[point] = shard_id
            positions.append(point)
        self._shards[shard_id] = positions
        self._points = sorted(self._owner_at)

    def remove_shard(self, shard_id: int) -> None:
        positions = self._shards.pop(shard_id, None)
        if positions is None:
            raise ValueError(f"shard {shard_id} not on the ring")
        for point in positions:
            del self._owner_at[point]
        self._points = sorted(self._owner_at)

    def shard_ids(self) -> List[int]:
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: object) -> bool:
        return shard_id in self._shards

    # ------------------------------------------------------------------ lookup
    def owner(self, key: str) -> int:
        """The shard owning ``key``: first virtual node clockwise of its hash."""
        if not self._points:
            raise ValueError("consistent-hash ring has no shards")
        position = ring_position(key, salt=b"topic")
        index = bisect_right(self._points, position) % len(self._points)
        return self._owner_at[self._points[index]]

    def preference_order(self, key: str) -> List[int]:
        """All distinct shards in clockwise ring order starting at ``key``.

        The first entry is :meth:`owner`; later entries are the successive
        fallbacks used by the bounded-loads assignment and by rebalancing.
        """
        if not self._points:
            raise ValueError("consistent-hash ring has no shards")
        position = ring_position(key, salt=b"topic")
        start = bisect_right(self._points, position)
        order: List[int] = []
        seen = set()
        count = len(self._points)
        for offset in range(count):
            shard = self._owner_at[self._points[(start + offset) % count]]
            if shard not in seen:
                seen.add(shard)
                order.append(shard)
                if len(order) == len(self._shards):
                    break
        return order

    def assign_balanced(self, key: str, load: Dict[int, int],
                        capacity: Optional[int] = None) -> int:
        """Bounded-loads assignment: the first shard in ``key``'s preference
        order whose entry in ``load`` is below ``capacity``.

        ``load`` maps shard id -> number of keys already assigned; the caller
        keeps it up to date.  ``capacity`` defaults to the perfectly balanced
        ``ceil((total assigned + 1) / shards)``.
        """
        order = self.preference_order(key)
        if capacity is None:
            total = sum(load.get(shard, 0) for shard in self._shards) + 1
            capacity = -(-total // len(self._shards))  # ceil division
        for shard in order:
            if load.get(shard, 0) < capacity:
                return shard
        return order[0]


def spread(assignment: Sequence[int]) -> Dict[int, int]:
    """Shard id -> key count histogram for an assignment (diagnostics)."""
    return dict(Counter(assignment))
