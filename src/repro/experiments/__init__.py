"""Experiment harness reproducing every quantitative claim of the paper.

Each experiment function in :mod:`repro.experiments.experiments` returns a
:class:`~repro.api.report.RunReport` (the unified API's single result
object) whose rows are printed by the corresponding benchmark in
``benchmarks/`` and recorded in ``EXPERIMENTS.md``.  See DESIGN.md for the
claim ↔ experiment ↔ module map.  ``ExperimentResult`` survives as a
deprecated alias of ``RunReport``.
"""

from repro.api.report import RunReport
from repro.experiments.runner import (
    ExperimentResult,
    run_experiment,
    run_experiment_campaign,
)
from repro.experiments.report import format_table, render_result
from repro.experiments import experiments

__all__ = ["RunReport", "ExperimentResult", "run_experiment",
           "run_experiment_campaign", "format_table", "render_result",
           "experiments"]
