"""Experiment implementations E1–E13 and ablations A1–A3 (see DESIGN.md).

Every function returns a :class:`~repro.api.report.RunReport` containing the
table the corresponding benchmark prints, plus explicit pass/fail flags for
the paper claims the experiment reproduces.  Default parameters are sized so
the whole suite runs in minutes on a laptop; all of them can be overridden
for larger runs.

All systems are stood up through the unified API
(:class:`~repro.api.spec.SystemSpec` + :func:`~repro.api.builder.build_system`
/ :func:`~repro.api.builder.build_stable`); no experiment names a concrete
facade class.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.convergence import edge_set_signature
from repro.analysis.graph_metrics import (
    degree_statistics,
    diameter,
    position_balance,
    routing_congestion,
)
from repro.api.report import RunReport
from repro.api.spec import SystemSpec
from repro.baselines.broker import BrokerLoadModel, BrokerPubSub
from repro.baselines.chord import ChordTopology
from repro.baselines.skipgraph import SkipGraphTopology
from repro.core.config import ProtocolParams
from repro.core.labels import count_labels_of_length, max_level, r_float
from repro.core.skip_ring import SkipRingTopology
from repro.pubsub.flooding import ideal_flood_depth, plain_ring_flood_depth
from repro.workloads.initial_states import AdversarialConfig, build_adversarial_system
from repro.workloads.publications import generate_payloads, scatter_publications


def _build_system(seed: int, params: Optional[ProtocolParams] = None,
                  shards: Optional[int] = None):
    """One-liner for the construction shape every experiment uses."""
    from repro.api.builder import build_system
    topology = "single" if shards is None else "sharded"
    return build_system(SystemSpec(topology=topology, shards=shards or 1,
                                   seed=seed, params=params))


def _build_stable(n: int, seed: int,
                  params: Optional[ProtocolParams] = None):
    """Stable single-supervisor bootstrap via the unified API."""
    from repro.api.builder import build_stable
    return build_stable(SystemSpec(seed=seed, params=params), n)


# --------------------------------------------------------------------------- E1
def e1_topology(sizes: Sequence[int] = (16, 64, 256, 1024)) -> RunReport:
    """Lemma 3 / Definition 2 / Figure 1: structure of the ideal SR(n)."""
    result = RunReport(
        name="E1",
        title="Skip-ring structure: degree bounds, degree sum vs 4n-4, diameter",
        headers=["n", "max_deg", "bound 2⌈log n⌉", "avg_deg", "edges", "deg_sum",
                 "paper 4n-4", "diameter", "⌈log n⌉"],
    )
    for n in sizes:
        topo = SkipRingTopology(n)
        max_deg = topo.max_degree()
        avg_deg = topo.average_degree()
        edges = topo.num_edges()
        degree_sum = sum(topo.degrees())
        diam = topo.diameter()
        level = max_level(n)
        result.add_row(n, max_deg, 2 * level, round(avg_deg, 3), edges, degree_sum,
                       4 * n - 4, diam, level)
        result.claim(f"n={n}: worst-case degree <= 2*ceil(log n)", max_deg <= 2 * level)
        result.claim(f"n={n}: average degree <= 4 (constant)", avg_deg <= 4.0 + 1e-9)
        if n >= 2:
            # Lemma 3's 4n-4 counts two link endpoints per level and node, so it
            # upper-bounds the true degree sum (see EXPERIMENTS.md).
            result.claim(f"n={n}: degree sum <= 4n-4", degree_sum <= 4 * n - 4)
        if n >= 4 and (n & (n - 1)) == 0:
            result.claim(f"n={n}: |E| == 2n-3 (power of two)", edges == 2 * n - 3)
        result.claim(f"n={n}: diameter <= ceil(log n) + 1", diam <= level + 1)
    result.metadata["sizes"] = list(sizes)
    return result


# --------------------------------------------------------------------------- E2
def theoretical_expected_requests(n: int, params: Optional[ProtocolParams] = None) -> float:
    """Expected configuration requests per timeout interval with the *exact*
    label-length counts (f(1) = 2, f(k) = 2^{k-1} for k > 1)."""
    params = params or ProtocolParams()
    total = 0.0
    for k in range(1, max_level(n) + 1):
        total += count_labels_of_length(k, n) * params.request_probability(k)
    return total


def paper_expected_requests(n: int) -> float:
    """The sum computed in the paper's proof of Theorem 5: Σ_k 1/(2k²) < 1.

    The proof counts 2^{k-1} subscribers of label length k for every k, which
    undercounts level 1 (there are two such subscribers, l(0)='0' and
    l(1)='1').  We reproduce both numbers and discuss the difference in
    EXPERIMENTS.md.
    """
    return sum(1.0 / (2 * k * k) for k in range(1, max_level(n) + 1))


def e2_supervisor_load(sizes: Sequence[int] = (16, 64, 256), rounds: int = 40,
                       seed: int = 1) -> RunReport:
    """Theorem 5: constant expected configuration-request load per timeout
    interval in a legitimate state, independent of n."""
    result = RunReport(
        name="E2",
        title="Supervisor maintenance load per timeout interval (Theorem 5)",
        headers=["n", "intervals", "requests", "requests/interval",
                 "E[x] exact counts", "E[x] paper's proof"],
    )
    measured: List[float] = []
    for n in sizes:
        system, _ = _build_stable(n, seed=seed)
        base_intervals = system.sim.completed_timeout_intervals()
        base_requests = system.supervisor_request_count()
        system.run_rounds(rounds)
        intervals = system.sim.completed_timeout_intervals() - base_intervals
        requests = system.supervisor_request_count() - base_requests
        per_interval = requests / intervals if intervals else float("nan")
        measured.append(per_interval)
        exact = theoretical_expected_requests(n, system.params)
        paper = paper_expected_requests(n)
        result.add_row(n, intervals, requests, round(per_interval, 4), round(exact, 4),
                       round(paper, 4))
        result.claim(f"n={n}: paper's stated bound Σ 1/(2k²) < 1", paper < 1.0)
        result.claim(f"n={n}: exact expectation is a constant (< 1.5)", exact < 1.5)
        result.claim(f"n={n}: measured load within 1.5x of exact expectation",
                     per_interval <= 1.5 * exact)
    if len(measured) >= 2:
        result.claim("measured load independent of n (max/min <= 1.6)",
                     max(measured) / max(min(measured), 1e-9) <= 1.6)
    result.metadata.update({"rounds": rounds, "seed": seed})
    return result


# --------------------------------------------------------------------------- E3
def e3_join_leave(sizes: Sequence[int] = (16, 64), operations: int = 8,
                  seed: int = 2) -> RunReport:
    """Theorem 7 + Section 4.1: constant supervisor overhead per subscribe /
    unsubscribe, and old subscribers are reconfigured only O(1) times while the
    system doubles."""
    result = RunReport(
        name="E3",
        title="Subscribe/unsubscribe overhead and configuration churn (Theorem 7)",
        headers=["n", "ops", "supervisor msgs/op (op-triggered)",
                 "max cfg changes of old nodes while doubling", "mean cfg changes"],
    )
    per_op_by_n: Dict[int, float] = {}
    for n in sizes:
        system, subscribers = _build_stable(n, seed=seed)
        topic = system.params.default_topic

        # --- overhead per operation: messages sent while handling the
        # Subscribe/Unsubscribe requests themselves (Theorem 7's quantity).
        before_ops = system.supervisor.ops_handled
        before_op_msgs = system.supervisor.op_response_messages
        joined = []
        for _ in range(operations):
            joined.append(system.add_subscriber(topic))
            system.run_rounds(3)
        for peer in joined[: operations // 2]:
            system.unsubscribe(peer, topic)
            system.run_rounds(3)
        system.run_until_legitimate(topic, max_rounds=400)
        ops_done = max(system.supervisor.ops_handled - before_ops, 1)
        op_messages = system.supervisor.op_response_messages - before_op_msgs
        per_op = op_messages / ops_done
        per_op_by_n[n] = per_op

        # --- configuration churn of pre-existing subscribers while n doubles.
        system2, old_subscribers = _build_stable(n, seed=seed + 17)
        for sub in old_subscribers:
            view = sub.view(topic, create=False)
            if view is not None:
                view.config_change_count = 0
        for _ in range(n):
            system2.add_subscriber(topic)
            system2.run_rounds(2)
        system2.run_until_legitimate(topic, max_rounds=600)
        changes = [sub.view(topic, create=False).config_change_count
                   for sub in old_subscribers]
        max_changes = max(changes)
        mean_changes = sum(changes) / len(changes)
        result.add_row(n, ops_done, round(per_op, 3), max_changes, round(mean_changes, 3))
        result.claim(f"n={n}: supervisor sends <= 2 messages per subscribe/unsubscribe",
                     per_op <= 2.0)
        result.claim(f"n={n}: old subscribers reconfigured <= 3 times while doubling",
                     max_changes <= 3)
    if len(per_op_by_n) >= 2:
        smallest, largest = min(per_op_by_n), max(per_op_by_n)
        ratio = (per_op_by_n[largest] + 0.5) / (per_op_by_n[smallest] + 0.5)
        result.claim("per-op supervisor overhead does not grow with n (ratio <= 2)",
                     ratio <= 2.0)
    result.metadata.update({"operations": operations, "seed": seed})
    return result


# --------------------------------------------------------------------------- E4
def e4_convergence(sizes: Sequence[int] = (8, 16, 32), seeds: Sequence[int] = (0, 1, 2),
                   database_mode: str = "corrupted", components: int = 2,
                   max_rounds: int = 1_500) -> RunReport:
    """Theorem 8: convergence from adversarial weakly connected initial states."""
    result = RunReport(
        name="E4",
        title="Convergence time from adversarial initial states (Theorem 8)",
        headers=["n", "trials", "converged", "mean rounds", "max rounds"],
    )
    for n in sizes:
        rounds_taken: List[float] = []
        converged = 0
        for seed in seeds:
            config = AdversarialConfig(n=n, seed=seed, database_mode=database_mode,
                                       components=components)
            system, _ = build_adversarial_system(config)
            start = system.sim.now
            ok = system.run_until_legitimate(max_rounds=max_rounds)
            if ok:
                converged += 1
                rounds_taken.append((system.sim.now - start) / system.sim.config.timeout_period)
        mean_rounds = sum(rounds_taken) / len(rounds_taken) if rounds_taken else float("inf")
        max_rounds_taken = max(rounds_taken) if rounds_taken else float("inf")
        result.add_row(n, len(seeds), converged, round(mean_rounds, 1),
                       round(max_rounds_taken, 1))
        result.claim(f"n={n}: every adversarial trial converged", converged == len(seeds))
    result.metadata.update({"database_mode": database_mode, "components": components})
    return result


# --------------------------------------------------------------------------- E5
def e5_closure(n: int = 32, observation_rounds: int = 150, check_every: int = 10,
               seed: int = 3) -> RunReport:
    """Theorem 13: once legitimate, the explicit edge set never changes."""
    result = RunReport(
        name="E5",
        title="Closure: explicit topology is stable in a legitimate state (Theorem 13)",
        headers=["n", "checks", "distinct edge-set signatures", "still legitimate"],
    )
    system, _ = _build_stable(n, seed=seed)
    signatures = {edge_set_signature(system.explicit_edges())}
    checks = 1
    for _ in range(observation_rounds // check_every):
        system.run_rounds(check_every)
        signatures.add(edge_set_signature(system.explicit_edges()))
        checks += 1
    still_legitimate = system.is_legitimate()
    result.add_row(n, checks, len(signatures), still_legitimate)
    result.claim("edge set never changed", len(signatures) == 1)
    result.claim("system still legitimate after observation window", still_legitimate)
    result.metadata.update({"observation_rounds": observation_rounds, "seed": seed})
    return result


# --------------------------------------------------------------------------- E6
def e6_publication_convergence(sizes: Sequence[int] = (8, 16, 32),
                               publication_count: int = 20, seed: int = 4,
                               max_rounds: int = 1_000) -> RunReport:
    """Theorems 17/23: anti-entropy spreads scattered publications to everyone."""
    result = RunReport(
        name="E6",
        title="Publication convergence via Patricia-trie anti-entropy (Theorem 17)",
        headers=["n", "publications", "converged", "rounds to convergence"],
    )
    for n in sizes:
        system, subscribers = _build_stable(n, seed=seed)
        keys = scatter_publications(system, subscribers, publication_count, seed=seed)
        start = system.sim.now
        ok = system.run_until_publications_converged(expected_keys=keys,
                                                     max_rounds=max_rounds)
        rounds = (system.sim.now - start) / system.sim.config.timeout_period
        result.add_row(n, publication_count, ok, round(rounds, 1))
        result.claim(f"n={n}: all subscribers eventually store all publications", ok)
    result.metadata.update({"publication_count": publication_count, "seed": seed})
    return result


# --------------------------------------------------------------------------- E7
def e7_flooding(sizes: Sequence[int] = (16, 64, 256, 1024), simulated_n: int = 32,
                seed: int = 5) -> RunReport:
    """Section 4.3: flooding reaches every subscriber within O(log n) hops."""
    result = RunReport(
        name="E7",
        title="Flood delivery depth: skip ring vs plain ring (Section 4.3)",
        headers=["n", "skip-ring depth", "⌈log n⌉", "plain-ring depth"],
    )
    for n in sizes:
        depth = ideal_flood_depth(n, source=0)
        level = max_level(n)
        plain = plain_ring_flood_depth(n)
        result.add_row(n, depth, level, plain)
        result.claim(f"n={n}: flood depth <= ceil(log n) + 1", depth <= level + 1)
        if n >= 64:
            result.claim(f"n={n}: flood depth < plain-ring depth", depth < plain)

    # Simulated check on a live system: measure actual hop counts.
    system, subscribers = _build_stable(simulated_n, seed=seed)
    publication = system.publish(subscribers[0], b"flood-probe")
    system.run_rounds(3 * max_level(simulated_n))
    delivered = system.all_subscribers_have(publication.key)
    hop_events = [e.data.get("hops", 0) for e in system.sim.tracer.events
                  if e.kind == "flood_delivery" and e.data.get("key") == publication.key]
    max_hops = max(hop_events) if hop_events else 0
    result.claim(f"simulated n={simulated_n}: flood delivered to all subscribers", delivered)
    result.claim(
        f"simulated n={simulated_n}: max flood hops <= ceil(log n) + 1",
        max_hops <= max_level(simulated_n) + 1)
    result.metadata.update({"simulated_n": simulated_n, "simulated_max_hops": max_hops})
    return result


# --------------------------------------------------------------------------- E8
def e8_congestion(sizes: Sequence[int] = (64, 256), samples: int = 300,
                  seed: int = 6) -> RunReport:
    """Section 1.3: placement balance and routing congestion vs Chord and
    skip graphs of the same size."""
    result = RunReport(
        name="E8",
        title="Balance and congestion: skip ring vs Chord vs skip graph (Section 1.3)",
        headers=["n", "overlay", "avg_deg", "max_deg", "diameter", "max/mean load",
                 "placement max/min gap"],
    )
    for n in sizes:
        overlays = []
        skip_ring = SkipRingTopology(n)
        overlays.append(("skip-ring", skip_ring.to_networkx(),
                         [r_float(lbl) for lbl in skip_ring.labels]))
        chord = ChordTopology(n, seed=seed)
        overlays.append(("chord", chord.to_networkx(), chord.positions()))
        skip_graph = SkipGraphTopology(n, seed=seed)
        overlays.append(("skip-graph", skip_graph.to_networkx(), skip_graph.positions()))

        measured: Dict[str, Dict[str, float]] = {}
        for name, graph, positions in overlays:
            deg = degree_statistics(graph)
            congestion = routing_congestion(graph, samples=samples, seed=seed)
            balance = position_balance(positions)
            measured[name] = {
                "avg_deg": deg.mean,
                "imbalance": congestion.load_imbalance,
                "balance": balance["max_min_ratio"],
            }
            result.add_row(n, name, round(deg.mean, 2), deg.maximum, diameter(graph),
                           round(congestion.load_imbalance, 2),
                           round(balance["max_min_ratio"], 2))
        result.claim(f"n={n}: skip ring has constant average degree (<= 4)",
                     measured["skip-ring"]["avg_deg"] <= 4.0 + 1e-9)
        result.claim(f"n={n}: skip ring average degree below Chord and skip graph",
                     measured["skip-ring"]["avg_deg"] < measured["chord"]["avg_deg"]
                     and measured["skip-ring"]["avg_deg"] < measured["skip-graph"]["avg_deg"])
        result.claim(f"n={n}: skip ring placement strictly more balanced",
                     measured["skip-ring"]["balance"] <= 2.0 + 1e-9
                     and measured["skip-ring"]["balance"] < measured["chord"]["balance"]
                     and measured["skip-ring"]["balance"] < measured["skip-graph"]["balance"])
    result.metadata.update({"samples": samples, "seed": seed})
    return result


# --------------------------------------------------------------------------- E9
def e9_failures(n: int = 32, crash_fractions: Sequence[float] = (0.1, 0.25),
                seed: int = 7, max_rounds: int = 1_500) -> RunReport:
    """Section 3.3: recovery from unannounced crashes with a single failure
    detector at the supervisor."""
    result = RunReport(
        name="E9",
        title="Recovery from unannounced subscriber crashes (Section 3.3)",
        headers=["n", "crashed", "survivors", "reconverged", "rounds"],
    )
    for fraction in crash_fractions:
        system, subscribers = _build_stable(n, seed=seed)
        to_crash = subscribers[:: max(1, int(1 / fraction))][: max(1, int(n * fraction))]
        for victim in to_crash:
            system.crash(victim)
        start = system.sim.now
        ok = system.run_until_legitimate(max_rounds=max_rounds)
        rounds = (system.sim.now - start) / system.sim.config.timeout_period
        survivors = len(system.members())
        result.add_row(n, len(to_crash), survivors, ok, round(rounds, 1))
        result.claim(f"crash {len(to_crash)}/{n}: system reconverges", ok)
        result.claim(f"crash {len(to_crash)}/{n}: survivors == n - crashed",
                     survivors == n - len(to_crash))
    result.metadata.update({"seed": seed})
    return result


# -------------------------------------------------------------------------- E10
def e10_broker_comparison(n_subscribers: Sequence[int] = (32, 128),
                          publication_counts: Sequence[int] = (10, 100, 1000),
                          maintenance_rounds: int = 100) -> RunReport:
    """Introduction / Section 1.3: broker load grows with the publication rate,
    supervisor load does not."""
    result = RunReport(
        name="E10",
        title="Central broker vs supervisor message load (Introduction)",
        headers=["subscribers", "publications", "broker msgs", "supervisor msgs",
                 "broker/supervisor"],
    )
    for n in n_subscribers:
        supervisor_loads = []
        for pubs in publication_counts:
            model = BrokerLoadModel(subscribers=n, publications=pubs, subscribe_ops=n)
            broker_msgs = model.broker_messages()
            supervisor_msgs = model.supervisor_messages(maintenance_rounds=maintenance_rounds)
            supervisor_loads.append(supervisor_msgs)
            result.add_row(n, pubs, broker_msgs, supervisor_msgs,
                           round(broker_msgs / supervisor_msgs, 2))
        result.claim(f"n={n}: supervisor load independent of publication rate",
                     len(set(supervisor_loads)) == 1)
        result.claim(f"n={n}: broker load grows with publication rate",
                     all(BrokerLoadModel(n, p, subscribe_ops=n).broker_messages()
                         < BrokerLoadModel(n, q, subscribe_ops=n).broker_messages()
                         for p, q in zip(publication_counts, publication_counts[1:])))

    # Operational sanity check that the analytic model matches a real broker.
    broker = BrokerPubSub()
    for node in range(10):
        broker.subscribe(node, "news")
    for payload in generate_payloads(5, seed=1):
        broker.publish(99, payload, "news")
    expected = BrokerLoadModel(subscribers=10, publications=5, subscribe_ops=10)
    result.claim("operational broker matches analytic model",
                 broker.broker_messages_handled == expected.broker_messages())
    result.metadata.update({"maintenance_rounds": maintenance_rounds})
    return result


# -------------------------------------------------------------------------- E11
def e11_sharded_scaling(shard_counts: Sequence[int] = (1, 2, 4), topics: int = 8,
                        subscribers_per_topic: int = 6, rounds: int = 40,
                        seed: int = 21) -> RunReport:
    """Beyond the paper: sharding topics across K supervisors divides the
    per-supervisor request load (the system's admitted bottleneck).

    The same workload — ``topics`` topics with ``subscribers_per_topic``
    subscribers each, stabilized and then run for ``rounds`` maintenance
    rounds — is executed against the single-supervisor topology and against
    the sharded topology for each shard count K (both built through
    :class:`~repro.api.spec.SystemSpec`).  The measured quantity is the
    number of Subscribe/Unsubscribe/GetConfiguration messages each
    supervisor received over the whole run; the hotspot is the maximum over
    supervisors.
    """
    result = RunReport(
        name="E11",
        title="Sharded supervisor cluster: per-supervisor request load vs K",
        headers=["facade", "K", "stabilized", "total reqs", "max/supervisor",
                 "mean/supervisor", "hotspot vs baseline"],
    )
    topic_names = [f"topic-{i}" for i in range(topics)]

    def populate_and_run(system) -> Tuple[bool, Dict[int, int]]:
        for topic in topic_names:
            for _ in range(subscribers_per_topic):
                system.add_subscriber(topic)
        ok = all(system.run_until_legitimate(t, max_rounds=2_000) for t in topic_names)
        system.run_rounds(rounds)
        return ok, system.supervisor_request_counts()

    baseline = _build_system(seed=seed)
    baseline_ok, baseline_counts = populate_and_run(baseline)
    baseline_max = max(baseline_counts.values())
    baseline_mean = sum(baseline_counts.values()) / len(baseline_counts)
    result.add_row("single", 1, baseline_ok, sum(baseline_counts.values()),
                   baseline_max, round(baseline_mean, 1), 1.0)
    result.claim("single-supervisor baseline stabilizes all topics", baseline_ok)
    result.record_message_stats("single", baseline)

    hotspots: List[int] = []
    for k in shard_counts:
        cluster = _build_system(seed=seed, shards=k)
        ok, counts = populate_and_run(cluster)
        hotspot = max(counts.values())
        mean = sum(counts.values()) / len(counts)
        ratio = hotspot / baseline_max
        hotspots.append(hotspot)
        result.add_row("sharded", k, ok, sum(counts.values()), hotspot,
                       round(mean, 1), round(ratio, 3))
        result.claim(f"K={k}: all {topics} topics stabilize", ok)
        result.record_message_stats(f"sharded-K{k}", cluster)
        if k == 1:
            result.claim("K=1 sharded facade matches single-supervisor load exactly",
                         counts == baseline_counts)
    result.claim("hotspot load non-increasing in K",
                 all(a >= b for a, b in zip(hotspots, hotspots[1:])))
    if 4 in shard_counts:
        k4_hotspot = hotspots[list(shard_counts).index(4)]
        result.claim("K=4 hotspot <= 40% of single-supervisor baseline",
                     k4_hotspot <= 0.40 * baseline_max)
    result.metadata.update({"topics": topics,
                            "subscribers_per_topic": subscribers_per_topic,
                            "rounds": rounds, "seed": seed})
    return result


# -------------------------------------------------------------------------- E12
def e12_adversarial_scenarios(seed: int = 5) -> RunReport:
    """Beyond the paper: declarative adversarial scenarios
    (:mod:`repro.scenarios`) — message loss, duplication, partitions with
    scheduled heals, churn storms, crash waves and supervisor failover.

    The headline claim: under **10 % message loss plus a partition that later
    heals**, every publication that survived anywhere still reaches every
    surviving subscriber (Theorem 17 under adversity), and the overlay
    re-legitimizes after each disruption window (Theorem 8).  Reports are
    byte-identical per seed across the heap/wheel schedulers and with
    telemetry enabled (the observer does not perturb the run), which makes
    the whole scenario library usable as a regression oracle — now with
    publication→delivery latency percentiles riding along.
    """
    import json as _json

    from repro.api.builder import build_system
    from repro.scenarios import (PartitionSpec, PhaseSpec, ScenarioSpec,
                                 get_scenario, run_scenario)
    from repro.scenarios.runner import ScenarioRunner

    result = RunReport(
        name="E12",
        title="Adversarial scenarios: loss, partitions, churn storms",
        headers=["scenario", "facade", "phase", "disruptions", "relegit rounds",
                 "pubs delivered/surviving", "adversary drops", "passed"],
    )

    def add_report_rows(report) -> None:
        for phase in report.phases:
            adversary_drops = sum(count for reason, count in phase.drops.items()
                                  if reason != "to_crashed")
            delivered = (f"{'all' if phase.delivered else 'NOT all'}"
                         f"/{phase.publications_surviving}"
                         if phase.delivery_checked else "-")
            result.add_row(report.scenario, report.facade, phase.name,
                           " ".join(phase.disruptions),
                           phase.relegitimize_rounds, delivered,
                           adversary_drops, phase.passed)

    # Determinism probe: one scenario, both schedulers, plus a rerun with
    # telemetry enabled — the histograms observe the run without perturbing
    # it, so the scenario JSON stays byte-identical to the plain run.
    lossy = get_scenario("lossy-network")
    wheel = run_scenario(lossy, seed=seed, scheduler="wheel")
    heap = run_scenario(lossy, seed=seed, scheduler="heap")
    telem_system = build_system(lossy.system_spec(seed=seed, scheduler="wheel")
                                .with_overrides(telemetry=True))
    telem = ScenarioRunner(lossy, seed=seed, scheduler="wheel",
                           system=telem_system).run_report()
    result.claim("same seed ⇒ byte-identical report JSON on heap and wheel",
                 wheel.to_json() == heap.to_json())
    result.claim("telemetry-enabled rerun ⇒ byte-identical scenario JSON",
                 wheel.to_json() == _json.dumps(telem.scenario, sort_keys=True,
                                                separators=(",", ":")))
    latency = ((telem.telemetry or {}).get("delivery_latency") or {})
    pcts = latency.get("summary") or {}
    ordered = [pcts.get("p50"), pcts.get("p90"), pcts.get("p99"),
               pcts.get("max")]
    result.claim("telemetry: delivery-latency p50 ≤ p90 ≤ p99 ≤ max recorded",
                 all(v is not None for v in ordered)
                 and ordered[0] <= ordered[1] <= ordered[2] <= ordered[3])
    result.metadata["delivery_latency"] = dict(pcts)
    add_report_rows(wheel)

    # Headline: 10% loss AND a healed partition in one disruption window.
    headline = ScenarioSpec(
        name="loss-plus-healed-partition",
        description="10% loss with a 35% partition that heals mid-phase",
        subscribers=14,
        topics=("wire",),
        phases=(
            PhaseSpec(name="cut+loss", rounds=24, loss_rate=0.10,
                      publications=8,
                      partition=PartitionSpec(name="minority", fraction=0.35,
                                              heal_after_rounds=14)),
        ),
    )
    report = run_scenario(headline, seed=seed)
    add_report_rows(report)
    phase = report.phases[0]
    result.claim("10% loss + healed partition: publications reach all "
                 "surviving subscribers", phase.delivered)
    result.claim("10% loss + healed partition: overlay re-legitimizes",
                 phase.relegitimized)
    result.claim("adversary losses occurred and were accounted per reason",
                 phase.drops.get("adversary_loss", 0) > 0)
    result.claim("partition drops occurred and were accounted per reason",
                 phase.drops.get("partition", 0) > 0)

    # The rest of the library doubles as an invariant sweep.
    for name in ("rolling-partition", "mass-crash-recovery",
                 "sharded-supervisor-failover"):
        report = run_scenario(get_scenario(name), seed=seed)
        add_report_rows(report)
        result.claim(f"{name}: every scenario invariant holds", report.passed)

    result.metadata.update({"seed": seed})
    return result


# -------------------------------------------------------------------------- E13
def e13_parallel_campaign(seed: int = 0, jobs: int = 1) -> RunReport:
    """E13: a sweep campaign over a loss-rate × shard-count grid through the
    parallel execution layer (:mod:`repro.exec`).

    Every task is one synthesized disruption window (12 subscribers,
    publications under link loss) against the single-supervisor facade and
    the sharded-4 cluster; per-task seeds are derived deterministically from
    the master seed, and the merged campaign artifact is byte-reproducible
    at any ``jobs`` value.
    """
    from repro.exec.campaign import CampaignReport, CampaignRunner
    from repro.exec.demo import e13_loss_shards

    sweep = e13_loss_shards(seed=seed)
    # telemetry=True on the base spec rides into every worker through the
    # payload's system dict, so the merged campaign artifact carries
    # cluster-wide delivery-latency percentiles on top of the per-task ones.
    sweep = sweep.with_overrides(base=sweep.base.with_overrides(telemetry=True))
    campaign = CampaignRunner(sweep, jobs=jobs).run()

    result = RunReport(
        name="E13",
        title="Parallel campaign: loss-rate × shard-count sweep via repro.exec",
        headers=["task", "n", "shards", "loss", "relegit rounds",
                 "pubs ok/issued", "verdict"],
    )
    for entry in campaign.tasks:
        report = entry["report"]
        scenario = report["scenario"]
        phase = scenario["phases"][0]
        result.add_row(
            entry["task_id"], scenario["subscribers_initial"],
            scenario["shards"], f"{entry['loss_rate']:g}",
            phase["relegitimize_rounds"],
            f"{phase['publications_surviving']}/{phase['publications_issued']}",
            "PASS" if report["passed"] else "FAIL")
        result.claim(f"{entry['task_id']}: all scenario invariants hold",
                     report["passed"])

    task_seeds = [entry["seed"] for entry in campaign.tasks]
    result.claim("distinct tasks derive distinct seeds",
                 len(set(task_seeds)) == len(task_seeds))
    result.claim("re-expanding the sweep derives identical per-task seeds",
                 [t.seed for t in e13_loss_shards(seed=seed).expand()]
                 == task_seeds)
    result.claim("campaign artifact JSON round-trips losslessly",
                 CampaignReport.from_json(campaign.to_json()).to_json()
                 == campaign.to_json())

    merged = campaign.telemetry or {}
    latency = (merged.get("delivery_latency") or {}).get("summary") or {}
    result.claim("merged campaign telemetry has delivery-latency percentiles",
                 all(latency.get(k) is not None
                     for k in ("p50", "p90", "p99", "max")))
    per_task_counts = [((entry["report"].get("telemetry") or {})
                        .get("delivery_latency") or {})
                       .get("summary", {}).get("count", 0)
                       for entry in campaign.tasks]
    result.claim("merged delivery-latency count is the exact sum over tasks",
                 latency.get("count") == sum(per_task_counts)
                 and sum(per_task_counts) > 0)
    result.metadata.update({"seed": seed, "tasks": len(campaign.tasks),
                            "sweep": campaign.name,
                            "delivery_latency": dict(latency)})
    return result


# ------------------------------------------------------------------ ablations
def a1_ablation_integration(n: int = 16, seeds: Sequence[int] = (0, 1),
                            max_rounds: int = 1_500) -> RunReport:
    """A1: integrate unknown GetConfiguration senders (paper prose) vs reply ⊥
    (pseudocode)."""
    result = RunReport(
        name="A1",
        title="Ablation: integrating unknown configuration requesters",
        headers=["variant", "trials", "converged", "mean rounds"],
    )
    for label, integrate in (("integrate (prose)", True), ("reply ⊥ (pseudocode)", False)):
        params = ProtocolParams(integrate_unknown_requesters=integrate)
        rounds_taken = []
        converged = 0
        for seed in seeds:
            config = AdversarialConfig(n=n, seed=seed, database_mode="empty", components=2)
            system, _ = build_adversarial_system(config, params=params)
            start = system.sim.now
            if system.run_until_legitimate(max_rounds=max_rounds):
                converged += 1
                rounds_taken.append(
                    (system.sim.now - start) / system.sim.config.timeout_period)
        mean_rounds = sum(rounds_taken) / len(rounds_taken) if rounds_taken else float("inf")
        result.add_row(label, len(seeds), converged, round(mean_rounds, 1))
        result.claim(f"{label}: converges from adversarial states", converged == len(seeds))
    return result


def a2_ablation_minimal_request(n: int = 16, seeds: Sequence[int] = (0, 1),
                                max_rounds: int = 800) -> RunReport:
    """A2: effect of action (iv) (minimal-label probe) on convergence speed."""
    result = RunReport(
        name="A2",
        title="Ablation: action (iv) minimal-label configuration requests",
        headers=["variant", "trials", "converged", "mean rounds (converged trials)"],
    )
    means: Dict[str, float] = {}
    for label, enabled in (("action (iv) on", True), ("action (iv) off", False)):
        params = ProtocolParams(enable_minimal_request=enabled)
        rounds_taken = []
        converged = 0
        for seed in seeds:
            config = AdversarialConfig(n=n, seed=seed, database_mode="empty",
                                       components=1, fraction_unlabeled=0.0,
                                       fraction_random_labels=1.0)
            system, _ = build_adversarial_system(config, params=params)
            start = system.sim.now
            if system.run_until_legitimate(max_rounds=max_rounds):
                converged += 1
                rounds_taken.append(
                    (system.sim.now - start) / system.sim.config.timeout_period)
        mean_rounds = sum(rounds_taken) / len(rounds_taken) if rounds_taken else float(max_rounds)
        means[label] = mean_rounds
        result.add_row(label, len(seeds), converged, round(mean_rounds, 1))
    result.claim("action (iv) does not slow convergence down",
                 means["action (iv) on"] <= means["action (iv) off"] * 1.5 + 5)
    return result


def a3_ablation_flooding(n: int = 32, publications: int = 5, seed: int = 9,
                         max_rounds: int = 800) -> RunReport:
    """A3: delivery latency of new publications with and without flooding."""
    result = RunReport(
        name="A3",
        title="Ablation: flooding vs anti-entropy-only delivery latency",
        headers=["variant", "publications", "all delivered", "rounds to full delivery"],
    )
    latencies: Dict[str, float] = {}
    for label, flooding in (("flooding + anti-entropy", True), ("anti-entropy only", False)):
        params = ProtocolParams(enable_flooding=flooding)
        system, subscribers = _build_stable(n, seed=seed, params=params)
        keys = set()
        for i, payload in enumerate(generate_payloads(publications, seed=seed)):
            keys.add(system.publish(subscribers[i % len(subscribers)], payload).key)
        start = system.sim.now
        ok = system.run_until_publications_converged(expected_keys=keys,
                                                     max_rounds=max_rounds,
                                                     check_every_rounds=1)
        rounds = (system.sim.now - start) / system.sim.config.timeout_period
        latencies[label] = rounds
        result.add_row(label, publications, ok, round(rounds, 1))
        result.claim(f"{label}: all publications delivered", ok)
    result.claim("flooding is at least as fast as anti-entropy alone",
                 latencies["flooding + anti-entropy"] <= latencies["anti-entropy only"] + 1)
    return result


ALL_EXPERIMENTS = {
    "E1": e1_topology,
    "E2": e2_supervisor_load,
    "E3": e3_join_leave,
    "E4": e4_convergence,
    "E5": e5_closure,
    "E6": e6_publication_convergence,
    "E7": e7_flooding,
    "E8": e8_congestion,
    "E9": e9_failures,
    "E10": e10_broker_comparison,
    "E11": e11_sharded_scaling,
    "E12": e12_adversarial_scenarios,
    "E13": e13_parallel_campaign,
    "A1": a1_ablation_integration,
    "A2": a2_ablation_minimal_request,
    "A3": a3_ablation_flooding,
}
