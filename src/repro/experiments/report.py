"""Plain-text table rendering for experiment results (RunReport)."""

from __future__ import annotations

from typing import List, Sequence

from repro.api.report import RunReport


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render a simple monospace table (markdown-compatible)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells)) + " |"
    out: List[str] = [line(list(headers)),
                      "|" + "|".join("-" * (w + 2) for w in widths) + "|"]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def render_result(result: RunReport) -> str:
    """Full text report of an experiment: title, table, claim checklist."""
    parts = [f"{result.experiment_id}: {result.title}", ""]
    parts.append(format_table(result.headers, result.rows))
    if result.claims:
        parts.append("")
        parts.append("Claims:")
        for description, holds in result.claims.items():
            parts.append(f"  [{'PASS' if holds else 'FAIL'}] {description}")
    if result.metadata:
        parts.append("")
        parts.append(f"metadata: {result.metadata}")
    return "\n".join(parts)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
