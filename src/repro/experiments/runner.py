"""Experiment result records and the experiment runners.

The result type of the experiment harness is
:class:`~repro.api.report.RunReport` (the unified API's single result
object).  :func:`run_experiment` runs one experiment in-process;
:func:`run_experiment_campaign` fans any subset of
:data:`~repro.experiments.experiments.ALL_EXPERIMENTS` out through the
:mod:`repro.exec` backends (``jobs=1`` inline, ``jobs>1`` one fresh worker
process per experiment) with backend-independent, byte-identical reports.
:class:`ExperimentResult` remains as a thin deprecation shim so old call
sites keep working — it *is* a ``RunReport`` under its historical
constructor signature.
"""

from __future__ import annotations

import time
import warnings
from typing import Callable, Dict, List, Optional, Sequence

from repro.api.report import RunReport


class ExperimentResult(RunReport):
    """Deprecated alias of :class:`~repro.api.report.RunReport`.

    Kept so code written against the pre-unified-API harness keeps running;
    constructing one emits a :class:`DeprecationWarning`.  ``experiment_id``
    maps onto :attr:`RunReport.name`.
    """

    def __init__(self, experiment_id: str, title: str = "",
                 headers: Sequence[str] = (),
                 rows: List[Sequence] = None,
                 claims: Dict[str, bool] = None,
                 metadata: Dict[str, object] = None) -> None:
        warnings.warn(
            "ExperimentResult is deprecated; use repro.api.RunReport "
            "(name=... instead of experiment_id=...)",
            DeprecationWarning, stacklevel=2)
        super().__init__(name=experiment_id, title=title, headers=list(headers),
                         rows=list(rows) if rows else [],
                         claims=dict(claims) if claims else {},
                         metadata=dict(metadata) if metadata else {})


def run_experiment(fn: Callable[..., RunReport], *args, **kwargs) -> RunReport:
    """Run an experiment function and stamp its wall-clock duration on the
    report's first-class :attr:`~repro.api.report.RunReport.wall_seconds`."""
    start = time.perf_counter()  # repro: allow[no-ambient-nondeterminism]
    result = fn(*args, **kwargs)
    if result.wall_seconds is None:
        # repro: allow[no-ambient-nondeterminism]
        result.wall_seconds = round(time.perf_counter() - start, 3)
    return result


def run_experiment_campaign(keys: Optional[Sequence[str]] = None,
                            jobs: int = 1,
                            progress=None) -> Dict[str, RunReport]:
    """Run experiments (default: all of ``ALL_EXPERIMENTS``) as a campaign
    over the :mod:`repro.exec` backends and return ``key -> RunReport`` in
    request order.

    ``jobs=1`` runs inline, ``jobs>1`` fans out across worker processes —
    either way every report crosses the backend's canonical JSON boundary,
    so the returned reports (and anything rendered from them, e.g.
    EXPERIMENTS.md) are byte-identical at any job count.  ``progress`` is an
    optional ``callable(key, report, done, total)`` streamed in completion
    order; only its wall times vary between runs.
    """
    from repro.exec.backend import TaskSpec, backend_for_jobs
    from repro.experiments.experiments import ALL_EXPERIMENTS

    selected = list(keys) if keys is not None else list(ALL_EXPERIMENTS)
    unknown = [key for key in selected if key not in ALL_EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments {unknown}; "
                       f"known: {', '.join(ALL_EXPERIMENTS)}")
    tasks = [TaskSpec(task_id=key, fn="repro.exec.tasks:run_experiment_task",
                      payload={"experiment": key}) for key in selected]

    def on_result(task, result, done, total):
        if progress is not None:
            progress(task.task_id, RunReport.from_dict(result), done, total)

    results = backend_for_jobs(jobs).run(tasks, progress=on_result)
    return {key: RunReport.from_dict(result)
            for key, result in zip(selected, results)}
