"""Experiment result records and a tiny runner.

The result type of the experiment harness is
:class:`~repro.api.report.RunReport` (the unified API's single result
object).  :class:`ExperimentResult` remains as a thin deprecation shim so
old call sites keep working — it *is* a ``RunReport`` under its historical
constructor signature.
"""

from __future__ import annotations

import time
import warnings
from typing import Callable, Dict, List, Sequence

from repro.api.report import RunReport


class ExperimentResult(RunReport):
    """Deprecated alias of :class:`~repro.api.report.RunReport`.

    Kept so code written against the pre-unified-API harness keeps running;
    constructing one emits a :class:`DeprecationWarning`.  ``experiment_id``
    maps onto :attr:`RunReport.name`.
    """

    def __init__(self, experiment_id: str, title: str = "",
                 headers: Sequence[str] = (),
                 rows: List[Sequence] = None,
                 claims: Dict[str, bool] = None,
                 metadata: Dict[str, object] = None) -> None:
        warnings.warn(
            "ExperimentResult is deprecated; use repro.api.RunReport "
            "(name=... instead of experiment_id=...)",
            DeprecationWarning, stacklevel=2)
        super().__init__(name=experiment_id, title=title, headers=list(headers),
                         rows=list(rows) if rows else [],
                         claims=dict(claims) if claims else {},
                         metadata=dict(metadata) if metadata else {})


def run_experiment(fn: Callable[..., RunReport], *args, **kwargs) -> RunReport:
    """Run an experiment function and stamp its wall-clock duration on the
    report's first-class :attr:`~repro.api.report.RunReport.wall_seconds`."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    if result.wall_seconds is None:
        result.wall_seconds = round(time.perf_counter() - start, 3)
    return result
