"""Experiment result records and a tiny runner."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence


@dataclass
class ExperimentResult:
    """A table of results produced by one experiment.

    Attributes
    ----------
    experiment_id:
        Identifier such as ``"E1"`` (see DESIGN.md).
    title:
        One-line description of what the experiment reproduces.
    headers / rows:
        The table content (rows are sequences matching ``headers``).
    claims:
        Paper claim → pass/fail map, filled by the experiment's own
        verification of the claim (e.g. "average degree <= 4": True).
    metadata:
        Free-form extra data (parameters, seeds, wall time).
    """

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[Sequence] = field(default_factory=list)
    claims: Dict[str, bool] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    def add_row(self, *values) -> None:
        self.rows.append(tuple(values))

    def claim(self, description: str, holds: bool) -> None:
        self.claims[description] = bool(holds)

    @property
    def all_claims_hold(self) -> bool:
        return all(self.claims.values()) if self.claims else True


def run_experiment(fn: Callable[..., ExperimentResult], *args, **kwargs) -> ExperimentResult:
    """Run an experiment function and stamp wall-clock duration metadata."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    result.metadata.setdefault("wall_seconds", round(time.perf_counter() - start, 3))
    return result
